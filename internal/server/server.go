// Package server is the HTTP/JSON serving layer over core.Pool: the
// network surface the ROADMAP's "heavy traffic" north star needs. It wraps
// a pool (built with NewPoolWithIndex, all traffic feeds one shared
// concurrent index) with the machinery a real service requires and the
// engine layer does not provide:
//
//   - admission control: a bounded in-flight limit plus a bounded wait
//     queue; beyond both, requests are shed immediately with 429 and a
//     Retry-After hint, so overload degrades throughput, never latency of
//     admitted work;
//   - per-request deadlines threaded as context into the engine layer,
//     which cancels the SDS-tree traversal and every in-flight rank
//     refinement within a bounded number of settles;
//   - observability: /healthz, /statsz (QPS, p50/p99 latency, pool
//     occupancy, aggregated engine counters), and structured JSON access
//     logs;
//   - graceful drain: Drain stops admission (503) while every admitted
//     request runs to completion, so a SIGTERM never drops an in-flight
//     response.
//
// Endpoints (documents defined in internal/api, the one home of the wire
// protocol):
//
//	POST /v1/query          {"algorithm":"indexed","q":12,"k":10,"timeout_ms":500}
//	POST /v1/batch          {"algorithm":"dynamic","queries":[1,2,3],"k":10}
//	POST /v1/mutate         {"mutations":[{"op":"set_weight","u":3,"v":9,"weight":2}]}
//	GET  /v1/index/snapshot (binary index snapshot; see replication.go)
//	GET  /v1/index/deltas?since=N
//	GET  /healthz
//	GET  /statsz
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"rkranks/internal/api"
	"rkranks/internal/core"
	"rkranks/internal/graph"
	"rkranks/internal/live"
	"rkranks/internal/obs"
)

// Backend abstracts the query executor behind the HTTP layer: a local
// core.Pool, or a cluster coordinator that scatters each query across
// shard backends (internal/cluster). The server is agnostic — admission,
// deadlines, observability, and drain apply identically to both.
type Backend interface {
	QueryContext(ctx context.Context, a core.Algorithm, q int32, k int) (*core.Result, error)
	QueryManyContext(ctx context.Context, a core.Algorithm, queries []int32, k int) ([]*core.Result, error)
	// Size is the backend's concurrent-query capacity (engine slots);
	// admission defaults derive from it.
	Size() int
	// Indexed reports whether the backend serves Indexed queries; the
	// default algorithm derives from it.
	Indexed() bool
}

// Mutator is the optional Backend capability behind POST /v1/mutate: a
// live store (internal/live) serving a mutable graph, or a cluster
// coordinator fanning mutation batches to its shards. Probed through
// Unwrap chains like every capability, so a cache-wrapped live store
// still accepts mutations; backends without it answer /v1/mutate with
// 501 unimplemented.
type Mutator interface {
	Mutate(ctx context.Context, ms []graph.Mutation) (live.MutateInfo, error)
}

// Optional Backend capabilities, probed with type assertions so the
// server needs no dependency on internal/cluster or internal/cache:
//
//   - interface{ ShardCount() int } extends /healthz with the shard count;
//   - interface{ ClusterSnapshot() any } extends /statsz with the
//     per-shard occupancy and scatter-gather latency breakdown;
//   - interface{ CacheSnapshot() any } extends /statsz with the response
//     cache's hit/coalesce/eviction counters and byte occupancy;
//   - interface{ CSRBytes() int64 } extends /statsz with the memory
//     footprint of the packed CSR graph views the backend traverses
//     (core.Pool implements it; the server's own graph is the fallback);
//   - interface{ HubLabeled() bool } extends /healthz with whether the
//     backend serves HubLabel queries, and
//     interface{ HubLabelBytes() int64 } extends /statsz with the hub
//     labeling's memory footprint (core.Pool and cluster coordinators
//     implement both);
//   - interface{ Generation() uint64 } extends /statsz with the backend's
//     graph generation, interface{ MutationSnapshot() any } with the live
//     mutation counters, and interface{ Graph() *graph.Graph } lets
//     /healthz report the current (possibly mutated) graph instead of the
//     boot-time one (live stores and mutation-fanning coordinators
//     implement all three);
//   - interface{ Unwrap() any } marks a decorator (the response cache):
//     probes walk the chain, so a cached cluster still reports its
//     shards;
//   - error values implementing HTTPStatuser choose their own HTTP
//     mapping, and RetryAfterHinter additionally sets Retry-After
//     (cluster overload errors carry the max shard hint).
type (
	// HTTPStatuser is implemented by backend errors that map to a
	// specific HTTP status and wire error code.
	HTTPStatuser interface {
		error
		HTTPStatus() (status int, code string)
	}
	// RetryAfterHinter is implemented by backend errors that carry a
	// Retry-After hint (e.g. the max across overloaded shards).
	RetryAfterHinter interface {
		error
		RetryAfterHint() time.Duration
	}
)

// Config configures a Server. One of Backend or Pool is required;
// everything else defaults to production-sane values.
type Config struct {
	// Backend serves the queries: a core.Pool or a cluster.Coordinator.
	// When nil, Pool is used.
	Backend Backend
	// Pool is the classic single-node backend. Build it with
	// core.NewPoolWithIndex to make Indexed the default algorithm over
	// one shared concurrent index. Ignored when Backend is set.
	Pool *core.Pool
	// Graph is the backend's graph, used for /healthz metadata and request
	// validation context. Required.
	Graph *graph.Graph

	// DefaultAlgorithm answers requests that omit "algorithm"
	// (naive|static|dynamic|indexed). Empty defaults to indexed when the
	// pool has an index, dynamic otherwise.
	DefaultAlgorithm string

	// MaxInFlight bounds requests being actively served (each occupies at
	// most one pool engine; batches also count as one). <= 0 defaults to
	// 2x the pool size: enough to keep every engine busy while the next
	// wave decodes.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot; beyond it
	// requests are rejected with 429 + Retry-After. <= 0 defaults to
	// 4x MaxInFlight.
	MaxQueue int

	// DefaultTimeout applies when a request carries no timeout_ms.
	// <= 0 defaults to 10s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts. <= 0 defaults to 60s.
	MaxTimeout time.Duration

	// MaxBatch bounds queries per /v1/batch request. <= 0 defaults to 1024.
	MaxBatch int

	// AccessLog receives one structured record per request. Nil disables
	// access logging (metrics still aggregate).
	AccessLog *slog.Logger

	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the serving
	// mux, so CPU/heap/alloc profiles of the query path can be captured in
	// situ (rkserve/rkcluster -pprof; see CONTRIBUTING.md for the
	// workflow). Off by default: the endpoints expose internals and a CPU
	// profile costs ~1% while running, so production opts in deliberately.
	EnablePprof bool

	// HealthExtra is merged into the /healthz document (reserved keys are
	// not overridden). rkserve uses it to publish its -shard spec so a
	// cluster coordinator can verify shard ownership at startup instead
	// of merging overlapping candidate classes silently wrong.
	HealthExtra map[string]any

	// Metrics is the observability catalog the server records into. Share
	// one instance (built with obs.NewMetrics over one registry) across
	// the cache, cluster, live store, and server of a process so /metrics
	// aggregates them all. Nil creates a private registry-backed catalog.
	// At most one Server may record into a registry-backed catalog — the
	// server registers the admission gauges against it.
	Metrics *obs.Metrics
	// EnableMetrics mounts GET /metrics (Prometheus text exposition) on
	// the serving mux. Off by default, like pprof: the endpoint exposes
	// operational internals, so production opts in deliberately
	// (rkserve/rkcluster -metrics).
	EnableMetrics bool
	// SlowQueryThreshold marks a request slow for the flight recorder
	// (GET /debug/requestz) and the slow-query log. 0 defaults to 500ms;
	// negative records every request — the -slow-query-ms 0 debugging
	// posture.
	SlowQueryThreshold time.Duration
}

// Server is the HTTP serving layer. Create with New, expose via Handler,
// stop with Drain.
type Server struct {
	cfg         Config
	backend     Backend
	defaultAlgo core.Algorithm
	mux         *http.ServeMux
	started     time.Time

	inflightSem chan struct{} // admission: active slots
	queueSem    chan struct{} // admission: waiting slots

	// drainMu makes the {check draining, inflight.Add(1)} pair in admit
	// atomic against Drain's flag flip: once Drain holds the write lock
	// and sets draining, every request is either already counted in
	// inflight (Drain waits for it) or will observe draining and be
	// refused — no request can slip between the flag and the WaitGroup.
	drainMu  sync.RWMutex
	draining bool
	inflight sync.WaitGroup // every admitted request, for Drain

	metrics  *metrics
	om       *obs.Metrics
	recorder *obs.Recorder
}

// New validates cfg, applies defaults, and returns a ready Server.
func New(cfg Config) (*Server, error) {
	backend := cfg.Backend
	if backend == nil {
		if cfg.Pool == nil {
			return nil, fmt.Errorf("server: one of Config.Backend or Config.Pool is required")
		}
		backend = cfg.Pool
	}
	if cfg.Graph == nil {
		return nil, fmt.Errorf("server: Config.Graph is required")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 2 * backend.Size()
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxInFlight
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 60 * time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	defaultAlgo := core.Dynamic
	if backend.Indexed() {
		defaultAlgo = core.Indexed
	}
	if cfg.DefaultAlgorithm != "" {
		var err error
		if defaultAlgo, err = core.ParseAlgorithm(cfg.DefaultAlgorithm); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	om := cfg.Metrics
	if om == nil {
		om = obs.NewMetrics(obs.NewRegistry())
	}
	slowThreshold := cfg.SlowQueryThreshold
	if slowThreshold == 0 {
		slowThreshold = 500 * time.Millisecond
	}
	s := &Server{
		cfg:         cfg,
		backend:     backend,
		defaultAlgo: defaultAlgo,
		mux:         http.NewServeMux(),
		started:     time.Now(),
		inflightSem: make(chan struct{}, cfg.MaxInFlight),
		queueSem:    make(chan struct{}, cfg.MaxQueue),
		metrics:     newMetrics(om),
		om:          om,
		recorder: obs.NewRecorder(obs.RecorderConfig{
			SlowThreshold: slowThreshold,
			Logger:        cfg.AccessLog,
		}),
	}
	s.registerGauges()
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/mutate", s.handleMutate)
	s.mux.HandleFunc("GET /v1/index/snapshot", s.handleIndexSnapshot)
	s.mux.HandleFunc("GET /v1/index/deltas", s.handleIndexDeltas)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.Handle("GET /debug/requestz", s.recorder.Handler())
	if cfg.EnableMetrics && om.Registry() != nil {
		s.mux.Handle("GET /metrics", om.Registry().Handler())
	}
	if cfg.EnablePprof {
		// Profiling requests bypass admission control on purpose: a CPU
		// profile of an overloaded server is exactly the artifact the
		// overload investigation needs.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// registerGauges wires the pull-sampled gauges: admission occupancy from
// the server's own semaphores, the rest probed through the backend's
// Unwrap chain (so a cache-wrapped cluster still reports its generation
// and the cache its occupancy). No-op on a catalog without a registry.
func (s *Server) registerGauges() {
	om := s.om
	om.RegisterGauge("rkranks_in_flight_requests", func() float64 { return float64(len(s.inflightSem)) })
	om.RegisterGauge("rkranks_queued_requests", func() float64 { return float64(len(s.queueSem)) })
	om.RegisterGauge("rkranks_draining", func() float64 {
		if s.Draining() {
			return 1
		}
		return 0
	})
	om.RegisterGauge("rkranks_pool_size", func() float64 { return float64(s.backend.Size()) })
	if gn, ok := probeBackend[interface{ Generation() uint64 }](s.backend); ok {
		om.RegisterGauge("rkranks_generation", func() float64 { return float64(gn.Generation()) })
	}
	if cb, ok := probeBackend[interface{ CSRBytes() int64 }](s.backend); ok {
		om.RegisterGauge("rkranks_csr_bytes", func() float64 { return float64(cb.CSRBytes()) })
	} else {
		g := s.cfg.Graph
		om.RegisterGauge("rkranks_csr_bytes", func() float64 { return float64(g.CSRBytes()) })
	}
	if hb, ok := probeBackend[interface{ HubLabelBytes() int64 }](s.backend); ok {
		om.RegisterGauge("rkranks_hub_label_bytes", func() float64 { return float64(hb.HubLabelBytes()) })
	}
	if cb, ok := probeBackend[interface{ CacheBytes() int64 }](s.backend); ok {
		om.RegisterGauge("rkranks_cache_bytes", func() float64 { return float64(cb.CacheBytes()) })
	}
	if ce, ok := probeBackend[interface{ CacheEntries() int64 }](s.backend); ok {
		om.RegisterGauge("rkranks_cache_entries", func() float64 { return float64(ce.CacheEntries()) })
	}
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Recorder exposes the slow-query flight recorder (tests and embedding
// binaries; HTTP consumers use GET /debug/requestz).
func (s *Server) Recorder() *obs.Recorder { return s.recorder }

// Metrics exposes the observability catalog the server records into.
func (s *Server) Metrics() *obs.Metrics { return s.om }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.draining
}

// Drain stops admitting queries (they get 503, /healthz turns 503 so load
// balancers stop routing here) and waits until every admitted request has
// been answered. It returns ctx's error if the drain deadline passes
// first; in-flight requests still run to completion in the background
// either way. Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted with requests in flight: %w", ctx.Err())
	}
}

// --- wire types ---------------------------------------------------------
//
// The request/response documents and the error envelope are defined once
// in internal/api; handlers use local aliases so the protocol cannot
// drift from what the typed client and the cluster's remote shards speak.

type (
	queryRequest  = api.QueryRequest
	batchRequest  = api.BatchRequest
	queryResponse = api.QueryResponse
	batchResponse = api.BatchResponse
)

// Error codes of the wire protocol (see api for the full list).
const (
	codeInvalidArgument  = api.CodeInvalidArgument
	codeOverloaded       = api.CodeOverloaded
	codeDraining         = api.CodeDraining
	codeDeadlineExceeded = api.CodeDeadlineExceeded
	codeCanceled         = api.CodeCanceled
	codeInternal         = api.CodeInternal
	codeUnimplemented    = api.CodeUnimplemented
)

// --- admission ----------------------------------------------------------

// admit applies the two-stage admission policy. On success it returns a
// release func; otherwise an HTTP status plus error code to shed with.
// The queue stage respects the request context, so a client that gives up
// while queued frees its slot immediately.
func (s *Server) admit(ctx context.Context) (release func(), status int, code string) {
	if s.Draining() {
		return nil, http.StatusServiceUnavailable, codeDraining
	}
	select {
	case s.inflightSem <- struct{}{}:
	default:
		// All active slots busy: try to wait, bounded by the queue.
		select {
		case s.queueSem <- struct{}{}:
		default:
			return nil, http.StatusTooManyRequests, codeOverloaded
		}
		select {
		case s.inflightSem <- struct{}{}:
			<-s.queueSem
		case <-ctx.Done():
			<-s.queueSem
			return nil, statusForContext(ctx.Err()), codeForContext(ctx.Err())
		}
	}
	// Re-check under the drain lock: a drain that raced the acquire must
	// win, and the {check, Add} pair must be atomic against the flag flip
	// (see drainMu) so Drain never returns with this request uncounted.
	s.drainMu.RLock()
	if s.draining {
		s.drainMu.RUnlock()
		<-s.inflightSem
		return nil, http.StatusServiceUnavailable, codeDraining
	}
	s.inflight.Add(1)
	s.drainMu.RUnlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			<-s.inflightSem
			s.inflight.Done()
		})
	}, 0, ""
}

func statusForContext(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return 499 // client closed request (nginx convention)
}

func codeForContext(err error) string {
	if errors.Is(err, context.DeadlineExceeded) {
		return codeDeadlineExceeded
	}
	return codeCanceled
}

// --- handlers -----------------------------------------------------------

// maxRequestIDLen bounds the inbound X-Request-Id a server adopts; longer
// values are replaced so a hostile client cannot bloat logs and traces.
const maxRequestIDLen = 128

// begin stamps a request with its ID and trace. An inbound X-Request-Id
// is adopted — that is how a cluster coordinator's trace stitches across
// its shard servers (the api.Client forwards the ID) — otherwise one is
// generated. The ID goes out on the response header before any body, and
// the trace rides the request context into the backend.
func (s *Server) begin(w http.ResponseWriter, r *http.Request, route string) (*http.Request, *obs.Trace) {
	rid := r.Header.Get("X-Request-Id")
	if rid == "" || len(rid) > maxRequestIDLen {
		rid = obs.NewRequestID()
	}
	tr := obs.NewTrace(rid, route)
	w.Header().Set("X-Request-Id", rid)
	return r.WithContext(obs.ContextWithTrace(r.Context(), tr)), tr
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	r, tr := s.begin(w, r, routeQuery)
	defer tr.Release()
	var req queryRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.reject(w, r, start, http.StatusBadRequest, codeInvalidArgument, err.Error())
		return
	}
	algo, err := s.resolveAlgorithm(req.Algorithm)
	if err != nil {
		s.reject(w, r, start, http.StatusBadRequest, codeInvalidArgument, err.Error())
		return
	}
	asp := tr.Begin(obs.StageAdmission)
	release, status, code := s.admit(r.Context())
	tr.End(asp)
	if release == nil {
		s.shed(w, r, start, status, code)
		return
	}
	defer release()

	ctx, cancel := s.requestContext(r.Context(), req.TimeoutMS)
	defer cancel()
	res, err := s.backend.QueryContext(ctx, algo, req.Q, req.K)
	if err != nil {
		s.queryError(w, r, start, err, slog.String("algorithm", algo.String()))
		return
	}
	resp := toQueryResponse(res, algo, time.Since(start))
	resp.RequestID = tr.ID()
	s.respond(w, r, start, http.StatusOK, resp, &res.Stats, 1,
		slog.String("algorithm", algo.String()), slog.Bool("partial", res.Partial))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	r, tr := s.begin(w, r, routeBatch)
	defer tr.Release()
	var req batchRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.reject(w, r, start, http.StatusBadRequest, codeInvalidArgument, err.Error())
		return
	}
	algo, err := s.resolveAlgorithm(req.Algorithm)
	if err != nil {
		s.reject(w, r, start, http.StatusBadRequest, codeInvalidArgument, err.Error())
		return
	}
	if len(req.Queries) == 0 {
		s.reject(w, r, start, http.StatusBadRequest, codeInvalidArgument, "batch has no queries")
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		s.reject(w, r, start, http.StatusBadRequest, codeInvalidArgument,
			fmt.Sprintf("batch of %d exceeds limit %d", len(req.Queries), s.cfg.MaxBatch))
		return
	}
	// A batch occupies ONE admission slot; its internal fan-out is bounded
	// by the pool size (QueryMany workers), not by admission.
	asp := tr.Begin(obs.StageAdmission)
	release, status, code := s.admit(r.Context())
	tr.End(asp)
	if release == nil {
		s.shed(w, r, start, status, code)
		return
	}
	defer release()

	ctx, cancel := s.requestContext(r.Context(), req.TimeoutMS)
	defer cancel()
	results, err := s.backend.QueryManyContext(ctx, algo, req.Queries, req.K)
	if err != nil {
		s.queryError(w, r, start, err, slog.String("algorithm", algo.String()))
		return
	}
	elapsed := time.Since(start)
	resp := batchResponse{
		Algorithm: api.AlgorithmOf(algo),
		K:         req.K,
		Results:   make([]queryResponse, len(results)),
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		RequestID: tr.ID(),
	}
	var agg core.Stats
	partial := false
	for i, res := range results {
		resp.Results[i] = toQueryResponse(res, algo, 0)
		agg.Add(res.Stats)
		partial = partial || res.Partial
	}
	s.respond(w, r, start, http.StatusOK, resp, &agg, len(results),
		slog.String("algorithm", algo.String()), slog.Bool("partial", partial))
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	r, tr := s.begin(w, r, routeMutate)
	defer tr.Release()
	var req api.MutateRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.reject(w, r, start, http.StatusBadRequest, codeInvalidArgument, err.Error())
		return
	}
	mut, ok := probeBackend[Mutator](s.backend)
	if !ok {
		s.reject(w, r, start, http.StatusNotImplemented, codeUnimplemented,
			"backend serves an immutable graph (run with live mutations enabled)")
		return
	}
	ms, err := api.DecodeMutations(req.Mutations)
	if err != nil {
		s.reject(w, r, start, http.StatusBadRequest, codeInvalidArgument, err.Error())
		return
	}
	if len(ms) == 0 {
		s.reject(w, r, start, http.StatusBadRequest, codeInvalidArgument, "mutation batch is empty")
		return
	}
	if len(ms) > s.cfg.MaxBatch {
		s.reject(w, r, start, http.StatusBadRequest, codeInvalidArgument,
			fmt.Sprintf("batch of %d mutations exceeds limit %d", len(ms), s.cfg.MaxBatch))
		return
	}
	// Mutations ride the same admission policy as queries: one batch, one
	// slot. Drain refuses them too, so a terminating server never applies
	// updates its replacement will not have observed.
	asp := tr.Begin(obs.StageAdmission)
	release, status, code := s.admit(r.Context())
	tr.End(asp)
	if release == nil {
		s.shed(w, r, start, status, code)
		return
	}
	defer release()

	ctx, cancel := s.requestContext(r.Context(), req.TimeoutMS)
	defer cancel()
	info, err := mut.Mutate(ctx, ms)
	if err != nil {
		s.queryError(w, r, start, err)
		return
	}
	resp := api.MutateResponse{
		Applied:    info.Applied,
		Generation: info.Generation,
		Rebuilt:    info.Rebuilt,
		Nodes:      info.Nodes,
		Edges:      info.Edges,
		ElapsedMS:  float64(time.Since(start).Microseconds()) / 1000,
		RequestID:  tr.ID(),
	}
	writeJSON(w, http.StatusOK, resp)
	// Mutations carry no engine stats; their latency lands in the mutate
	// route's own window, never the query percentiles (a rebuild would
	// read as a latency cliff that never happened to any query).
	s.observe(r, start, http.StatusOK, nil, 0, slog.Bool("rebuilt", info.Rebuilt))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.Draining() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	// A live backend's graph evolves past Config.Graph (vertex adds,
	// topology rebuilds): report the current snapshot when one is exposed.
	g := s.cfg.Graph
	if gb, ok := probeBackend[interface{ Graph() *graph.Graph }](s.backend); ok {
		g = gb.Graph()
	}
	_, mutable := probeBackend[Mutator](s.backend)
	doc := map[string]any{
		"status":      state,
		"uptime_sec":  time.Since(s.started).Seconds(),
		"graph_nodes": g.N(),
		"graph_edges": g.M(),
		"pool_size":   s.backend.Size(),
		"indexed":     s.backend.Indexed(),
		"algorithm":   s.defaultAlgo.String(),
		"mutable":     mutable,
	}
	if sc, ok := probeBackend[interface{ ShardCount() int }](s.backend); ok {
		doc["shards"] = sc.ShardCount()
	}
	if hl, ok := probeBackend[interface{ HubLabeled() bool }](s.backend); ok {
		doc["hub_labeled"] = hl.HubLabeled()
	}
	for k, v := range s.cfg.HealthExtra {
		if _, reserved := doc[k]; !reserved {
			doc[k] = v
		}
	}
	writeJSON(w, status, doc)
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.snapshot()
	snap.UptimeSec = time.Since(s.started).Seconds()
	snap.PoolSize = s.backend.Size()
	snap.InFlight = len(s.inflightSem)
	snap.Queued = len(s.queueSem)
	snap.Draining = s.Draining()
	if cs, ok := probeBackend[interface{ ClusterSnapshot() any }](s.backend); ok {
		snap.Cluster = cs.ClusterSnapshot()
	}
	if cs, ok := probeBackend[interface{ CacheSnapshot() any }](s.backend); ok {
		snap.Cache = cs.CacheSnapshot()
	}
	if cb, ok := probeBackend[interface{ CSRBytes() int64 }](s.backend); ok {
		snap.CSRBytes = cb.CSRBytes()
	} else {
		snap.CSRBytes = s.cfg.Graph.CSRBytes()
	}
	if hb, ok := probeBackend[interface{ HubLabelBytes() int64 }](s.backend); ok {
		snap.HubLabelBytes = hb.HubLabelBytes()
	}
	if gn, ok := probeBackend[interface{ Generation() uint64 }](s.backend); ok {
		snap.Generation = gn.Generation()
	}
	if msn, ok := probeBackend[interface{ MutationSnapshot() any }](s.backend); ok {
		snap.Mutations = msn.MutationSnapshot()
	}
	snap.Replication = s.replicationSnapshot()
	writeJSON(w, http.StatusOK, snap)
}

// probeBackend asserts a capability against a backend, walking Unwrap
// decorator chains (a response cache around a cluster coordinator still
// answers the cluster probes). The outermost implementation wins.
func probeBackend[T any](b any) (T, bool) {
	for b != nil {
		if t, ok := b.(T); ok {
			return t, true
		}
		u, ok := b.(interface{ Unwrap() any })
		if !ok {
			break
		}
		b = u.Unwrap()
	}
	var zero T
	return zero, false
}

// --- helpers ------------------------------------------------------------

// maxBodyBytes bounds request bodies; batches of MaxBatch int32 queries
// fit comfortably.
const maxBodyBytes = 1 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func (s *Server) resolveAlgorithm(name api.Algorithm) (core.Algorithm, error) {
	return name.Core(s.defaultAlgo)
}

// requestContext derives the engine-layer context: the client deadline
// (clamped to MaxTimeout, defaulted to DefaultTimeout) on top of the
// request context, so both client disconnect and deadline cancel the
// query.
func (s *Server) requestContext(parent context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	return context.WithTimeout(parent, timeout)
}

func toQueryResponse(res *core.Result, algo core.Algorithm, elapsed time.Duration) queryResponse {
	entries := make([]api.Entry, len(res.Entries))
	for i, e := range res.Entries {
		entries[i] = api.Entry{Node: e.Node, Rank: e.Rank}
	}
	stats := res.Stats
	resp := queryResponse{
		Query:      res.Query,
		K:          res.K,
		Algorithm:  api.AlgorithmOf(algo),
		Entries:    entries,
		Partial:    res.Partial,
		Generation: res.Generation,
		Stats:      &stats,
	}
	if elapsed > 0 {
		resp.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	}
	return resp
}

// queryError maps an engine/pool/cluster error to the wire protocol. A
// backend error carrying its own HTTP mapping (HTTPStatuser — cluster
// shard unavailability and aggregated shard overload) wins over the
// generic classes; its Retry-After hint, if any, is forwarded so a
// coordinator's 429 tells clients when the slowest shard will admit
// again instead of this server's own queue estimate.
func (s *Server) queryError(w http.ResponseWriter, r *http.Request, start time.Time, err error, extra ...slog.Attr) {
	var hs HTTPStatuser
	switch {
	case errors.Is(err, core.ErrInvalidArgument):
		s.reject(w, r, start, http.StatusBadRequest, codeInvalidArgument, err.Error(), extra...)
	case errors.Is(err, context.DeadlineExceeded):
		s.reject(w, r, start, http.StatusGatewayTimeout, codeDeadlineExceeded, err.Error(), extra...)
	case errors.Is(err, context.Canceled):
		s.reject(w, r, start, 499, codeCanceled, err.Error(), extra...)
	case errors.As(err, &hs):
		status, code := hs.HTTPStatus()
		var rh RetryAfterHinter
		if errors.As(err, &rh) {
			if secs := int(rh.RetryAfterHint() / time.Second); secs > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(secs))
			}
		}
		if status == http.StatusTooManyRequests {
			s.metrics.shed()
		}
		s.reject(w, r, start, status, code, err.Error(), extra...)
	default:
		s.reject(w, r, start, http.StatusInternalServerError, codeInternal, err.Error(), extra...)
	}
}

// shed records and answers an admission rejection. 429 carries a
// Retry-After hint scaled to the default timeout: by then the current
// queue has almost certainly cleared.
func (s *Server) shed(w http.ResponseWriter, r *http.Request, start time.Time, status int, code string) {
	if status == http.StatusTooManyRequests {
		retry := int(s.cfg.DefaultTimeout / time.Second)
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		s.metrics.shed()
	}
	s.reject(w, r, start, status, code, http.StatusText(status))
}

func (s *Server) reject(w http.ResponseWriter, r *http.Request, start time.Time, status int, code, msg string, extra ...slog.Attr) {
	tr := obs.FromContext(r.Context())
	body := api.ErrorBody{Code: code, Message: msg, RequestID: tr.ID()}
	// Mirror the Retry-After header (set by shed / queryError before this
	// call) into the envelope, so clients that only read bodies see it.
	if secs, err := strconv.Atoi(w.Header().Get("Retry-After")); err == nil && secs > 0 {
		body.RetryAfterSec = secs
	}
	writeJSON(w, status, body)
	s.observe(r, start, status, nil, 0, extra...)
}

func (s *Server) respond(w http.ResponseWriter, r *http.Request, start time.Time, status int, body any, st *core.Stats, okQueries int, extra ...slog.Attr) {
	writeJSON(w, status, body)
	s.observe(r, start, status, st, okQueries, extra...)
}

// observe closes out one request: metrics (route counters, latency and
// stage histograms, engine counter mirror), the flight recorder (which
// copies the trace, so the handler's deferred Release is safe), and the
// access log with the trace-derived attrs — request_id always, the cache
// decision and shard short-circuit counts when those stages ran.
func (s *Server) observe(r *http.Request, start time.Time, status int, st *core.Stats, okQueries int, extra ...slog.Attr) {
	elapsed := time.Since(start)
	tr := obs.FromContext(r.Context())
	route := routeOther
	if tr != nil {
		route = tr.Route()
	}
	s.metrics.observe(route, status, elapsed, st, okQueries, tr)
	if tr != nil && s.recorder.Observe(tr, status, elapsed) {
		s.om.SlowQueries.Inc()
	}
	if s.cfg.AccessLog != nil {
		attrs := make([]slog.Attr, 0, 12+len(extra))
		attrs = append(attrs,
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Float64("elapsed_ms", float64(elapsed.Microseconds())/1000),
			slog.String("remote", r.RemoteAddr),
		)
		if tr != nil {
			attrs = append(attrs, slog.String("request_id", tr.ID()))
			// Single-query lookups mark the decision with one flag attr;
			// batch lookups carry counts.
			if _, ok := tr.Attr(obs.StageCacheLookup, "hit"); ok {
				attrs = append(attrs, slog.String("cache", "hit"))
			} else if _, ok := tr.Attr(obs.StageCacheLookup, "coalesced"); ok {
				attrs = append(attrs, slog.String("cache", "coalesced"))
			} else if _, ok := tr.Attr(obs.StageCacheLookup, "miss"); ok {
				attrs = append(attrs, slog.String("cache", "miss"))
			} else if hits, ok := tr.Attr(obs.StageCacheLookup, "hits"); ok {
				misses, _ := tr.Attr(obs.StageCacheLookup, "misses")
				coalesced, _ := tr.Attr(obs.StageCacheLookup, "coalesced")
				attrs = append(attrs,
					slog.Int64("cache_hits", hits),
					slog.Int64("cache_misses", misses),
					slog.Int64("cache_coalesced", coalesced))
			}
			if v, ok := tr.Attr(obs.StageScatterRound1, "short_circuited"); ok {
				attrs = append(attrs, slog.Int64("shards_short_circuited", v))
			}
		}
		attrs = append(attrs, extra...)
		s.cfg.AccessLog.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}
