package server

import (
	"sync"
	"time"

	"rkranks/internal/api"
	"rkranks/internal/core"
	"rkranks/internal/stats"
)

// latWindow is how many recent request latencies back the /statsz
// percentiles: large enough for stable p99 under load, small enough that
// the window tracks current behavior rather than all of history.
const latWindow = 2048

// qpsBuckets is the per-second request-count ring backing the QPS rates.
const qpsBuckets = 64

// metrics aggregates serving telemetry. A single mutex guards everything:
// per-request work is a few stores, contention is negligible next to a
// rank query, and a coherent snapshot comes for free.
type metrics struct {
	mu sync.Mutex

	requests int64
	byClass  [6]int64 // status/100 histogram: [0] collects non-standard (499)
	shedded  int64

	lat    [latWindow]float64 // seconds, ring
	latN   int                // valid prefix length
	latIdx int

	secCount [qpsBuckets]int64 // requests landing in second secStamp[i]
	secStamp [qpsBuckets]int64

	query core.Stats // engine counters summed over successful requests
	okays int64      // requests contributing to query
}

func newMetrics() *metrics { return &metrics{} }

// observe records one finished request. st is nil for requests that never
// reached the pool (rejections, shed load).
func (m *metrics) observe(status int, elapsed time.Duration, st *core.Stats) {
	now := time.Now().Unix()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	class := status / 100
	if class < 1 || class >= len(m.byClass) {
		class = 0
	}
	m.byClass[class]++
	i := now % qpsBuckets
	if m.secStamp[i] != now {
		m.secStamp[i] = now
		m.secCount[i] = 0
	}
	m.secCount[i]++
	if st != nil {
		// Only requests that reached the pool enter the latency window:
		// mixing in microsecond-fast sheds and rejects would drag the
		// reported percentiles toward zero exactly when the server is
		// overloaded — the moment an operator needs them most.
		m.lat[m.latIdx] = elapsed.Seconds()
		m.latIdx = (m.latIdx + 1) % latWindow
		if m.latN < latWindow {
			m.latN++
		}
		m.query.Add(*st)
		m.okays++
	}
}

// shed records an overload rejection (429).
func (m *metrics) shed() {
	m.mu.Lock()
	m.shedded++
	m.mu.Unlock()
}

// Snapshot is the /statsz document, defined in internal/api alongside the
// rest of the wire protocol.
type Snapshot = api.Snapshot

// LatencySnapshot reports percentiles over the recent-latency window, in
// milliseconds.
type LatencySnapshot = api.LatencySnapshot

func (m *metrics) snapshot() Snapshot {
	now := time.Now().Unix()
	m.mu.Lock()
	defer m.mu.Unlock()

	snap := Snapshot{
		RequestsTotal: m.requests,
		SheddedTotal:  m.shedded,
		StatusClasses: map[string]int64{},
		QueryStats:    m.query,
		QueriesOK:     m.okays,
	}
	classes := [6]string{"other", "1xx", "2xx", "3xx", "4xx", "5xx"}
	for i, n := range m.byClass {
		if n > 0 {
			snap.StatusClasses[classes[i]] = n
		}
	}
	// QPS over trailing windows; the current (partial) second is excluded
	// so a snapshot early in a second does not read as a dip.
	var c10, c60 int64
	for i := int64(0); i < qpsBuckets; i++ {
		age := now - m.secStamp[i]
		if age < 1 || m.secStamp[i] == 0 {
			continue
		}
		if age <= 10 {
			c10 += m.secCount[i]
		}
		if age <= 60 {
			c60 += m.secCount[i]
		}
	}
	snap.QPS10s = float64(c10) / 10
	snap.QPS60s = float64(c60) / 60

	if m.latN > 0 {
		window := make([]float64, m.latN)
		copy(window, m.lat[:m.latN])
		snap.Latency = LatencySnapshot{
			P50:    1000 * stats.Percentile(window, 50),
			P90:    1000 * stats.Percentile(window, 90),
			P99:    1000 * stats.Percentile(window, 99),
			Mean:   1000 * stats.Mean(window),
			Window: m.latN,
		}
	}
	if denom := m.query.IndexHits + m.query.Refinements; denom > 0 {
		snap.IndexHitRate = float64(m.query.IndexHits) / float64(denom)
	}
	if denom := m.query.LabelFallbacks + m.query.LabelPruned; denom > 0 {
		snap.LabelFallbackRate = float64(m.query.LabelFallbacks) / float64(denom)
	}
	snap.BatchSharedTraversals = int64(m.query.SharedTraversals)
	if m.query.Refinements > 0 {
		snap.TraversalReuseRatio = float64(m.query.SharedTraversals) / float64(m.query.Refinements)
	}
	return snap
}
