package server

import (
	"sync"
	"time"

	"rkranks/internal/api"
	"rkranks/internal/core"
	"rkranks/internal/obs"
	"rkranks/internal/stats"
)

// Route classes label every serving-level metric series. The set is
// closed (Prometheus label cardinality) and maps one-to-one onto the
// mutating endpoints plus a catch-all; /statsz keys its per-route
// latency windows by the same names.
const (
	routeQuery  = "query"
	routeBatch  = "batch"
	routeMutate = "mutate"
	routeOther  = "other"
)

var routeClasses = [...]string{routeQuery, routeBatch, routeMutate, routeOther}

// latWindow is how many recent request latencies back the /statsz
// percentiles: large enough for stable p99 under load, small enough that
// the window tracks current behavior rather than all of history.
const latWindow = 2048

// qpsBuckets is the per-second request-count ring backing the QPS rates.
const qpsBuckets = 64

// latRing is one route class's recent-latency window. Before these were
// split per route, a burst of slow mutations (a CSR rebuild) or batches
// would drag the "query" percentiles an operator was actually watching.
type latRing struct {
	buf [latWindow]float64 // seconds
	n   int                // valid prefix length
	idx int
}

func (r *latRing) observe(d time.Duration) {
	r.buf[r.idx] = d.Seconds()
	r.idx = (r.idx + 1) % latWindow
	if r.n < latWindow {
		r.n++
	}
}

func (r *latRing) snapshot() LatencySnapshot {
	if r.n == 0 {
		return LatencySnapshot{}
	}
	window := make([]float64, r.n)
	copy(window, r.buf[:r.n])
	return LatencySnapshot{
		P50:    1000 * stats.Percentile(window, 50),
		P90:    1000 * stats.Percentile(window, 90),
		P99:    1000 * stats.Percentile(window, 99),
		Mean:   1000 * stats.Mean(window),
		Window: r.n,
	}
}

// metrics aggregates serving telemetry. Every monotone counter is an obs
// instrument — /statsz reads them back with Value(), so the /statsz and
// /metrics numbers are one storage and can never disagree. The mutex
// guards only what Prometheus does not carry: the percentile rings, the
// QPS second-ring, and the engine-stat aggregation.
type metrics struct {
	om *obs.Metrics

	// Per-route handles, resolved once so the request path never touches
	// the vec's lazy-series map. Pre-materializing them also makes every
	// route's series visible at 0 on the first scrape.
	requests map[string]*obs.Counter
	latency  map[string]*obs.Histogram

	mu        sync.Mutex
	responses map[string]map[string]*obs.Counter // route -> status class

	lat map[string]*latRing // per route class, successful requests only

	secCount [qpsBuckets]int64 // requests landing in second secStamp[i]
	secStamp [qpsBuckets]int64

	query core.Stats // engine counters summed over successful requests
}

// statusClassNames maps status/100 to its label; [0] collects
// non-standard codes (499).
var statusClassNames = [6]string{"other", "1xx", "2xx", "3xx", "4xx", "5xx"}

func newMetrics(om *obs.Metrics) *metrics {
	if om == nil {
		om = obs.NewMetrics(nil)
	}
	m := &metrics{
		om:        om,
		requests:  make(map[string]*obs.Counter, len(routeClasses)),
		latency:   make(map[string]*obs.Histogram, len(routeClasses)),
		responses: make(map[string]map[string]*obs.Counter, len(routeClasses)),
		lat:       make(map[string]*latRing, len(routeClasses)),
	}
	for _, route := range routeClasses {
		m.requests[route] = om.Requests.With(route)
		m.latency[route] = om.RequestSeconds.With(route)
		m.responses[route] = make(map[string]*obs.Counter, len(statusClassNames))
		m.lat[route] = &latRing{}
	}
	return m
}

func statusClass(status int) string {
	class := status / 100
	if class < 1 || class >= len(statusClassNames) {
		class = 0
	}
	return statusClassNames[class]
}

// observe records one finished request. st is nil for requests that never
// reached the backend (rejections, shed load) and for mutations (which
// carry no engine stats); okQueries is how many individual queries the
// request answered successfully (len(results) for a batch). tr may be
// nil; when present its closed spans feed the per-stage histograms.
func (m *metrics) observe(route string, status int, elapsed time.Duration, st *core.Stats, okQueries int, tr *obs.Trace) {
	m.requests[route].Inc()
	if okQueries > 0 {
		m.om.QueriesOK.Add(int64(okQueries))
	}
	if status == 200 {
		// Only successful requests enter the latency distributions: mixing
		// in microsecond-fast sheds and rejects would drag the reported
		// percentiles toward zero exactly when the server is overloaded —
		// the moment an operator needs them most.
		m.latency[route].Observe(elapsed.Seconds())
	}
	if st != nil {
		m.om.EngineRefinements.Add(int64(st.Refinements))
		m.om.EnginePruned.Add(int64(st.PrunedByBound))
		m.om.EngineIndexHits.Add(int64(st.IndexHits))
		m.om.EngineSharedTraversals.Add(int64(st.SharedTraversals))
		m.om.LabelPruned.Add(int64(st.LabelPruned))
		m.om.LabelFallbacks.Add(int64(st.LabelFallbacks))
	}
	if tr != nil {
		// Parent spans only: a scatter round's per-shard child spans would
		// otherwise mix single-RPC durations into the whole-round series.
		for _, sp := range tr.Spans() {
			if sp.Shard < 0 {
				m.om.StageSeconds[sp.Stage].Observe(sp.Duration().Seconds())
			}
		}
	}

	now := time.Now().Unix()
	class := statusClass(status)
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.responses[route][class]
	if c == nil {
		c = m.om.Responses.With(route, class)
		m.responses[route][class] = c
	}
	c.Inc()
	i := now % qpsBuckets
	if m.secStamp[i] != now {
		m.secStamp[i] = now
		m.secCount[i] = 0
	}
	m.secCount[i]++
	if status == 200 {
		m.lat[route].observe(elapsed)
	}
	if st != nil {
		m.query.Add(*st)
	}
}

// shed records an overload rejection (429).
func (m *metrics) shed() { m.om.Shed.Inc() }

// Snapshot is the /statsz document, defined in internal/api alongside the
// rest of the wire protocol.
type Snapshot = api.Snapshot

// LatencySnapshot reports percentiles over the recent-latency window, in
// milliseconds.
type LatencySnapshot = api.LatencySnapshot

func (m *metrics) snapshot() Snapshot {
	now := time.Now().Unix()
	m.mu.Lock()
	defer m.mu.Unlock()

	snap := Snapshot{
		SheddedTotal:  m.om.Shed.Value(),
		StatusClasses: map[string]int64{},
		QueryStats:    m.query,
		QueriesOK:     m.om.QueriesOK.Value(),
	}
	for _, route := range routeClasses {
		snap.RequestsTotal += m.requests[route].Value()
		for class, c := range m.responses[route] {
			if v := c.Value(); v > 0 {
				snap.StatusClasses[class] += v
			}
		}
	}
	// QPS over trailing windows; the current (partial) second is excluded
	// so a snapshot early in a second does not read as a dip.
	var c10, c60 int64
	for i := int64(0); i < qpsBuckets; i++ {
		age := now - m.secStamp[i]
		if age < 1 || m.secStamp[i] == 0 {
			continue
		}
		if age <= 10 {
			c10 += m.secCount[i]
		}
		if age <= 60 {
			c60 += m.secCount[i]
		}
	}
	snap.QPS10s = float64(c10) / 10
	snap.QPS60s = float64(c60) / 60

	// The historic top-level window is the query route's, so dashboards
	// reading latency_ms keep seeing what they always meant to see.
	snap.Latency = m.lat[routeQuery].snapshot()
	for _, route := range routeClasses {
		if ls := m.lat[route].snapshot(); ls.Window > 0 {
			if snap.LatencyByRoute == nil {
				snap.LatencyByRoute = map[string]LatencySnapshot{}
			}
			snap.LatencyByRoute[route] = ls
		}
	}

	if denom := m.query.IndexHits + m.query.Refinements; denom > 0 {
		snap.IndexHitRate = float64(m.query.IndexHits) / float64(denom)
	}
	if denom := m.query.LabelFallbacks + m.query.LabelPruned; denom > 0 {
		snap.LabelFallbackRate = float64(m.query.LabelFallbacks) / float64(denom)
	}
	snap.BatchSharedTraversals = int64(m.query.SharedTraversals)
	if m.query.Refinements > 0 {
		snap.TraversalReuseRatio = float64(m.query.SharedTraversals) / float64(m.query.Refinements)
	}
	return snap
}
