// HTTP serving: the full production surface in one process. Boots the
// internal/server layer (the same one cmd/rkserve wraps) over a pool
// sharing a concurrent index, drives it with mixed HTTP traffic — single
// queries, a batch, a deliberately bad request, a deliberately impossible
// deadline — then drains gracefully and prints the /statsz aggregate the
// operators would scrape.
//
// Run with: go run ./examples/httpserving
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"
	"sync"
	"time"

	"rkranks"
	"rkranks/internal/server"
)

func main() {
	// A synthetic collaboration graph standing in for production data.
	g, err := buildGraph(3000, 21)
	if err != nil {
		log.Fatal(err)
	}
	ix, err := rkranks.NewConcurrentIndex(g, rkranks.IndexParams{
		HubFraction: 0.1, RankFraction: 0.1, MaxK: 50,
		Strategy: rkranks.DegreeHubs,
	})
	if err != nil {
		log.Fatal(err)
	}
	pool, err := rkranks.NewPoolWithIndex(g, rkranks.Options{}, 0, ix)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := server.New(server.Config{
		Pool:           pool,
		Graph:          g,
		DefaultTimeout: 2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("serving %d-node graph at %s (pool %d engines, shared index)\n\n",
		g.N(), ts.URL, pool.Size())

	client := rkranks.NewClient(ts.URL)
	ctx := context.Background()

	// Concurrent clients: every query's refinements improve the shared
	// index for everyone.
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(7))
	queries := make([]int32, 200)
	for i := range queries {
		queries[i] = int32(rng.Intn(g.N()))
	}
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := client.Query(ctx, "", queries[(c*25+i)%len(queries)], 10, 0); err != nil {
					log.Printf("query: %v", err)
				}
			}
		}(c)
	}
	wg.Wait()

	// One batch, answered in input order through Pool.QueryMany.
	batch, err := client.Batch(ctx, "indexed", []int32{1, 2, 3, 4, 5}, 5, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch of %d answered; q=%d top entry: node %d at rank %d\n",
		len(batch.Results), batch.Results[0].Query,
		batch.Results[0].Entries[0].Node, batch.Results[0].Entries[0].Rank)

	// The error surface: validation is 400/invalid_argument, an impossible
	// deadline is 504/deadline_exceeded.
	if _, err := client.Query(ctx, "bogus", 1, 5, 0); err != nil {
		fmt.Printf("bad algorithm   -> %v\n", err)
	}
	if _, err := client.Query(ctx, "naive", 1, 500, time.Millisecond); err != nil {
		fmt.Printf("1ms deadline    -> %v\n", err)
	}

	// Graceful drain: stop admission, finish in-flight, report.
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		log.Fatal(err)
	}
	if _, err := client.Query(ctx, "", 1, 5, 0); err != nil {
		fmt.Printf("after drain     -> %v\n", err)
	}

	snap, err := client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n/statsz: %d requests, p50 %.2fms p99 %.2fms, index hit rate %.0f%%, %d refinements total\n",
		snap.RequestsTotal, snap.Latency.P50, snap.Latency.P99,
		100*snap.IndexHitRate, snap.QueryStats.Refinements)
}

// buildGraph assembles a DBLP-like collaboration graph via the public
// builder API.
func buildGraph(n int, seed int64) (*rkranks.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	b := rkranks.NewBuilder(false)
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = b.AddNode()
	}
	for i := 1; i < n; i++ {
		// Preferential attachment by sampling earlier nodes.
		for d := 0; d < 4; d++ {
			j := rng.Intn(i)
			w := 0.5 + rng.Float64()
			if err := b.AddEdge(ids[i], ids[j], w); err != nil {
				return nil, err
			}
		}
	}
	return b.Finalize(), nil
}
