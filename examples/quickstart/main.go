// Quickstart: the paper's running example (Figure 1 / Example 1) on the
// public API. Seven researchers form a weighted collaboration graph; Alice
// is a newcomer with a single weak link, Eric is centrally connected.
// Reverse top-k fails both of them (empty result for Alice, everything for
// Eric), while reverse k-ranks returns exactly k well-chosen nodes.
package main

import (
	"fmt"
	"log"

	"rkranks"
)

func main() {
	b := rkranks.NewBuilder(false) // undirected collaboration graph
	names := []string{"Alice", "Bob", "Caroline", "Sid", "Eric", "Frank", "George"}
	id := map[string]int32{}
	for _, n := range names {
		id[n] = b.AddLabeledNode(n)
	}
	for _, e := range []struct {
		u, v string
		w    float64
	}{
		{"Alice", "Bob", 1.0},
		{"Bob", "Eric", 0.2},
		{"Bob", "Caroline", 0.3},
		{"Caroline", "Sid", 1.2},
		{"Eric", "Frank", 0.9},
		{"Eric", "Sid", 1.0},
		{"Eric", "George", 1.1},
		{"Frank", "George", 0.2},
	} {
		b.MustAddEdge(id[e.u], id[e.v], e.w)
	}
	g := b.Finalize()

	show := func(who string) {
		q := id[who]

		rtk := rkranks.ReverseTopK(g, q, 2)
		fmt.Printf("reverse top-2 of %s: %d result(s)\n", who, len(rtk))
		for _, e := range rtk {
			fmt.Printf("   %-8s ranks %s #%d\n", g.Label(e.Node), who, e.Rank)
		}

		res, err := rkranks.ReverseKRanks(g, q, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reverse 2-ranks of %s: always exactly 2 results\n", who)
		for _, e := range res {
			fmt.Printf("   %-8s ranks %s #%d\n", g.Label(e.Node), who, e.Rank)
		}
		fmt.Println()
	}

	fmt.Println("== Alice (cold newcomer: reverse top-k comes up empty) ==")
	show("Alice")
	fmt.Println("== Eric (hot hub: reverse top-k returns everyone) ==")
	show("Eric")

	// The same query through an explicit engine exposes work counters.
	e := rkranks.NewEngine(g, rkranks.Options{})
	res, err := e.Query(rkranks.Dynamic, id["Alice"], 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic engine refined %d node(s) and bound-pruned %d (paper Section 4 example: 3 and 3)\n",
		res.Stats.Refinements, res.Stats.PrunedByBound)
}
