// Serving: a production-shaped setup for heavy query traffic. One
// concurrency-safe index (built in parallel, lock-striped inside) is
// shared by a pool of engines. Two throughput mechanisms are shown:
// batch execution (QueryMany runs each engine's share of a batch as one
// shared-traversal batch, replaying refinement settle logs across its
// queries), and per-query Indexed traffic where every query's rank
// refinements feed the shared dictionaries, so the index keeps getting
// better for everyone as traffic flows.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rkranks"
)

func main() {
	// A synthetic social graph standing in for production data: 4000
	// users, preferential attachment, weighted ties.
	g := socialGraph(4000, 5, 42)

	// Build the shared index once at startup. NewConcurrentIndex uses all
	// cores and returns the lock-striped implementation a pool may share;
	// Concurrent() distinguishes it from a BuildIndex result.
	start := time.Now()
	ix, err := rkranks.NewConcurrentIndex(g, rkranks.IndexParams{
		HubFraction:  0.1,
		RankFraction: 0.1,
		MaxK:         50,
		Strategy:     rkranks.DegreeHubs,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d entries (~%d KB), concurrent=%v, built in %v\n",
		ix.Entries(), ix.SizeBytes()/1024, ix.Concurrent(), time.Since(start).Round(time.Millisecond))

	// One pool, one shared index, GOMAXPROCS engines.
	pool, err := rkranks.NewPoolWithIndex(g, rkranks.Options{}, 0, ix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pool: %d engines on %d CPU(s)\n\n", pool.Size(), runtime.NumCPU())

	// Phase 1 — batch execution. QueryMany groups the queries per engine
	// into shared-traversal batches: a refinement whose settle log was
	// recorded for an earlier query of the batch is replayed instead of
	// re-searched, and results stay byte-identical to the per-query path.
	// Dynamic shows the executor itself at work; on Indexed pools the
	// learned dictionaries absorb most repeat candidates before batching
	// even sees them — complementary mechanisms, demonstrated separately.
	const requests = 2000
	rng := rand.New(rand.NewSource(7))
	queryset := make([]int32, requests)
	for i := range queryset {
		queryset[i] = int32(rng.Intn(g.N()))
	}
	startBatch := time.Now()
	results, err := pool.QueryMany(rkranks.Dynamic, queryset[:500], 10)
	if err != nil {
		log.Fatal(err)
	}
	batchElapsed := time.Since(startBatch)
	var refines, shared int
	for _, res := range results {
		refines += res.Stats.Refinements
		shared += res.Stats.SharedTraversals
	}
	fmt.Printf("batched %d Dynamic queries in %v (%.0f QPS)\n",
		len(results), batchElapsed.Round(time.Millisecond),
		float64(len(results))/batchElapsed.Seconds())
	fmt.Printf("%d of %d refinements served by settle-log replay (reuse ratio %.2f)\n\n",
		shared, refines, float64(shared)/float64(refines))

	// Phase 2 — a burst of per-query traffic on the now-warm index: many
	// more request goroutines than engines, all asking "whose short list
	// would user q make?".
	const clients = 32
	var served, refinements atomic.Int64
	queries := make(chan int32, clients)
	var wg sync.WaitGroup
	startServe := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range queries {
				res, err := pool.Query(rkranks.Indexed, q, 10)
				if err != nil {
					log.Fatal(err)
				}
				served.Add(1)
				refinements.Add(int64(res.Stats.Refinements))
			}
		}()
	}
	for _, q := range queryset {
		queries <- q
	}
	close(queries)
	wg.Wait()
	elapsed := time.Since(startServe)

	fmt.Printf("served %d Indexed queries in %v (%.0f QPS aggregate)\n",
		served.Load(), elapsed.Round(time.Millisecond),
		float64(served.Load())/elapsed.Seconds())
	fmt.Printf("avg %.2f refinements/query; index grew to %d entries from query feedback\n",
		float64(refinements.Load())/float64(served.Load()), ix.Entries())

	// The index survives restarts: the on-disk format is shared between
	// implementations, so a serial build can be served concurrently later.
	fmt.Println("\n(SaveIndex + LoadConcurrentIndex persists the learned index across restarts)")
}

// socialGraph grows a preferential-attachment graph: each newcomer links
// to m earlier users, favoring well-connected ones, with tie strengths in
// (0.5, 1.5).
func socialGraph(n, m int, seed int64) *rkranks.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := rkranks.NewBuilder(false)
	b.EnsureNodes(n)
	targets := []int32{0}
	for v := int32(1); v < int32(n); v++ {
		seen := map[int32]bool{}
		for e := 0; e < m && int(v) > e; e++ {
			t := targets[rng.Intn(len(targets))]
			if t == v || seen[t] {
				continue
			}
			seen[t] = true
			b.MustAddEdge(v, t, 0.5+rng.Float64())
			targets = append(targets, t)
		}
		targets = append(targets, v)
	}
	return b.Finalize()
}
