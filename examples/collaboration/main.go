// Collaboration recommendation on a DBLP-like co-authorship graph (the
// paper's motivating application): for a query author, find the k authors
// who rank the query author highest by collaboration distance — the people
// most likely to welcome a joint paper.
//
// The example contrasts a "cold" low-degree author with a "hot" hub author,
// showing that reverse k-ranks serves both with a fixed-size answer, and
// demonstrates an index-backed engine for query streams.
package main

import (
	"fmt"
	"log"
	"time"

	"rkranks"
	"rkranks/internal/gen"
)

func main() {
	// A scaled-down DBLP-like collaboration graph (power-law degrees, the
	// paper's edge weighting).
	g := gen.DBLPLike(gen.DBLPLikeParams{
		Nodes: 4000, AttachPerNode: 7, ExtraCollabFactor: 0.5, Seed: 42,
	})
	fmt.Printf("collaboration graph: %d authors, %d co-author pairs\n\n", g.N(), g.M())

	// Pick a cold author (degree 7 minimum attach) and the hottest hub.
	hot, hotDeg := g.MaxOutDegreeNode()
	cold := int32(g.N() - 1) // latest arrival: low degree
	fmt.Printf("hot author %d (degree %d), cold author %d (degree %d)\n\n",
		hot, hotDeg, cold, g.OutDegree(cold))

	engine := rkranks.NewEngine(g, rkranks.Options{})
	for _, q := range []int32{cold, hot} {
		rtk := rkranks.ReverseTopK(g, q, 5)
		fmt.Printf("author %d: reverse top-5 returns %d author(s)\n", q, len(rtk))

		res, err := engine.Query(rkranks.Dynamic, q, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("author %d: reverse 5-ranks recommends:\n", q)
		for i, e := range res.Entries {
			fmt.Printf("  %d. author %-6d (ranks %d as collaborator #%d)\n", i+1, e.Node, q, e.Rank)
		}
		fmt.Println()
	}

	// For recommendation services the same queries arrive continuously;
	// the Section-5 index amortizes across the stream and improves as it
	// absorbs queries.
	ix, err := rkranks.BuildIndex(g, rkranks.IndexParams{
		HubFraction: 0.1, RankFraction: 0.1, MaxK: 20, Strategy: rkranks.DegreeHubs,
	})
	if err != nil {
		log.Fatal(err)
	}
	engine.SetIndex(ix)

	var refinements int
	start := time.Now()
	queries := 200
	for i := 0; i < queries; i++ {
		q := int32((i * 37) % g.N())
		res, err := engine.Query(rkranks.Indexed, q, 10)
		if err != nil {
			log.Fatal(err)
		}
		refinements += res.Stats.Refinements
	}
	fmt.Printf("indexed stream: %d queries in %v (%.1f refinements/query; index now holds %d rank entries)\n",
		queries, time.Since(start).Round(time.Millisecond),
		float64(refinements)/float64(queries), ix.Entries())
}
