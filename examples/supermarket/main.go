// Supermarket case study (the paper's Figure 5, Section 6.2.2): a
// bichromatic reverse k-ranks query on a road network. Stores form the
// query class, road nodes (standing in for communities) form the result
// class. A store's reverse k-ranks answer is the list of k communities
// most attracted to it by travel time — the right target list for a
// promotion budget, unlike top-k (unilateral) or reverse top-k (unbounded).
package main

import (
	"fmt"
	"log"

	"rkranks"
	"rkranks/internal/gen"
)

func main() {
	g, stores := gen.RoadNetwork(gen.RoadNetworkParams{
		Rows: 60, Cols: 60, KeepProb: 0.25, Stores: 60, Seed: 7,
	})
	candidates, counted := gen.StoreClasses(g.N(), stores)
	fmt.Printf("road network: %d junctions, %d road segments, %d stores\n\n",
		g.N(), g.M(), len(stores))

	engine := rkranks.NewEngine(g, rkranks.Options{
		Candidates: candidates, // communities may appear in results
		Counted:    counted,    // ranks count competing stores
	})

	// Two nearby competing stores, as in the Wellcome/Parknshop study:
	// pick the closest store pair so their catchment areas overlap.
	wellcome, parknshop := closestStorePair(g, stores)
	d, _ := rkranks.Distance(g, wellcome, parknshop)
	fmt.Printf("competing stores %d and %d are %.2f travel minutes apart\n\n", wellcome, parknshop, d)
	for _, q := range []int32{wellcome, parknshop} {
		res, err := engine.Query(rkranks.Dynamic, q, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("store %d: top-5 communities to target (reverse 5-ranks):\n", q)
		for i, e := range res.Entries {
			d, _ := rkranks.Distance(g, e.Node, q)
			fmt.Printf("  %d. community %-6d ranks store #%d (travel time %.2f)\n",
				i+1, e.Node, e.Rank, d)
		}
		fmt.Println()
	}

	// The paper's reverse top-1 comparison: communities whose *nearest*
	// store is this one. Unbounded size — useful context, unusable as a
	// fixed-size promotion list.
	loyal := rkranks.ReverseTopKBichromatic(g, wellcome, 1, candidates, counted)
	fmt.Printf("reverse top-1 of store %d: %d communities call it their nearest store\n\n", wellcome, len(loyal))

	// Contrast with top-k's unilateral view: scan the communities nearest
	// to the store for one that actually prefers a rival (the paper's
	// community B, nearest to Parknshop yet loyal to Wellcome).
	for _, e := range rkranks.TopK(g, wellcome, 10) {
		if counted[e.Node] {
			continue // another store
		}
		if r := bichromaticRank(g, e.Node, wellcome, counted); r > 1 {
			fmt.Printf("community %d is among the nearest to store %d, yet ranks it only #%d — a top-k hit a promotion would waste\n",
				e.Node, wellcome, r)
			break
		}
	}

	// The paper's Figure 7 shows the index shining on sparse road networks.
	ix, err := rkranks.BuildIndex(g, rkranks.IndexParams{
		HubFraction: 0.1, RankFraction: 0.1, MaxK: 20,
		Strategy: rkranks.DegreeHubs, Counted: counted,
	})
	if err != nil {
		log.Fatal(err)
	}
	engine.SetIndex(ix)
	res, err := engine.Query(rkranks.Indexed, wellcome, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nindexed query for store %d: %d refinement(s), %d answered from the index\n",
		wellcome, res.Stats.Refinements, res.Stats.IndexHits+res.Stats.SeededFromIndex)
}

// closestStorePair returns the pair of stores with the smallest travel
// distance between them.
func closestStorePair(g *rkranks.Graph, stores []int32) (int32, int32) {
	best := 1e18
	a, b := stores[0], stores[1]
	for i := 0; i < len(stores); i++ {
		for j := i + 1; j < len(stores); j++ {
			if d, ok := rkranks.Distance(g, stores[i], stores[j]); ok && d < best {
				best, a, b = d, stores[i], stores[j]
			}
		}
	}
	return a, b
}

// bichromaticRank counts competing stores closer to the community than q.
func bichromaticRank(g *rkranks.Graph, community, q int32, counted []bool) int32 {
	dq, ok := rkranks.Distance(g, community, q)
	if !ok {
		return rkranks.RankUnreachable
	}
	r := int32(1)
	for v := int32(0); int(v) < g.N(); v++ {
		if !counted[v] || v == q {
			continue
		}
		if d, ok := rkranks.Distance(g, community, v); ok && d < dq {
			r++
		}
	}
	return r
}
