// Social-network influence on a directed Epinions-like trust graph: for a
// user q, the reverse k-ranks query finds the k users who place the most
// trust-weighted importance on q (rank q nearest by directed trust paths)
// — candidates to notify, recruit, or protect when q's account changes.
//
// On directed graphs distances are asymmetric: the engines traverse the
// transpose graph from q while refinements run forward, and the Lemma-4
// count bound is automatically disabled (paper footnote 1).
package main

import (
	"fmt"
	"log"
	"time"

	"rkranks"
	"rkranks/internal/gen"
)

func main() {
	g := gen.EpinionsLike(gen.EpinionsLikeParams{
		Nodes: 3000, OutPerNode: 3, BackEdgeProb: 0.3, Seed: 99,
	})
	fmt.Printf("trust graph: %d users, %d trust statements (directed)\n\n", g.N(), g.M())

	engine := rkranks.NewEngine(g, rkranks.Options{})
	// Pick a mid-popularity user that others actually point at (late
	// arrivals in a trust graph may have no incoming edges at all, and an
	// unreachable user legitimately has an empty reverse k-ranks result).
	q := int32(0)
	for v := g.N() / 2; v < g.N(); v++ {
		if g.InDegree(int32(v)) >= 3 {
			q = int32(v)
			break
		}
	}
	fmt.Printf("query user %d (trusted by %d, trusts %d)\n\n", q, g.InDegree(q), g.OutDegree(q))

	for _, algo := range []rkranks.Algorithm{rkranks.Static, rkranks.Dynamic} {
		start := time.Now()
		res, err := engine.Query(algo, q, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%v] %v, %d refinements\n", algo, time.Since(start).Round(time.Microsecond), res.Stats.Refinements)
		if algo == rkranks.Dynamic {
			for i, e := range res.Entries {
				fmt.Printf("  %d. user %-5d (user %d is their #%d most-trusted-proximate)\n",
					i+1, e.Node, q, e.Rank)
			}
		}
	}

	// Asymmetry check: who q would pick versus who picks q.
	fmt.Println("\ndirected asymmetry:")
	for _, e := range rkranks.TopK(g, q, 3) {
		back := rkranks.Rank(g, e.Node, q)
		fmt.Printf("  user %d is #%d from %d's view, while %d ranks as #%d from theirs\n",
			e.Node, e.Rank, q, q, back)
	}

	// Index-backed stream with the closeness-first hub strategy.
	ix, err := rkranks.BuildIndex(g, rkranks.IndexParams{
		HubFraction: 0.1, RankFraction: 0.1, MaxK: 20,
		Strategy: rkranks.ClosenessHubs, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	engine.SetIndex(ix)
	var hits, refinements int
	start := time.Now()
	const queries = 150
	for i := 0; i < queries; i++ {
		res, err := engine.Query(rkranks.Indexed, int32((i*101)%g.N()), 10)
		if err != nil {
			log.Fatal(err)
		}
		hits += res.Stats.IndexHits + res.Stats.SeededFromIndex
		refinements += res.Stats.Refinements
	}
	fmt.Printf("\nindexed stream: %d queries in %v — %.1f refinements/query, %.1f index answers/query\n",
		queries, time.Since(start).Round(time.Millisecond),
		float64(refinements)/queries, float64(hits)/queries)
}
