package rkranks_test

import (
	"fmt"
	"log"

	"rkranks"
)

// Example reproduces Example 1 of the paper: the reverse 2-ranks query of
// Alice, a weakly connected newcomer, returns the two researchers most
// likely to collaborate with her — exactly where reverse top-k returns
// nothing.
func Example() {
	b := rkranks.NewBuilder(false)
	id := map[string]int32{}
	for _, n := range []string{"Alice", "Bob", "Caroline", "Sid", "Eric", "Frank", "George"} {
		id[n] = b.AddLabeledNode(n)
	}
	edges := []struct {
		u, v string
		w    float64
	}{
		{"Alice", "Bob", 1.0}, {"Bob", "Eric", 0.2}, {"Bob", "Caroline", 0.3},
		{"Caroline", "Sid", 1.2}, {"Eric", "Frank", 0.9}, {"Eric", "Sid", 1.0},
		{"Eric", "George", 1.1}, {"Frank", "George", 0.2},
	}
	for _, e := range edges {
		b.MustAddEdge(id[e.u], id[e.v], e.w)
	}
	g := b.Finalize()

	fmt.Println("reverse top-2 of Alice:", len(rkranks.ReverseTopK(g, id["Alice"], 2)), "results")
	entries, err := rkranks.ReverseKRanks(g, id["Alice"], 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		fmt.Printf("%s ranks Alice #%d\n", g.Label(e.Node), e.Rank)
	}
	// Output:
	// reverse top-2 of Alice: 0 results
	// Bob ranks Alice #3
	// Caroline ranks Alice #4
}

// ExampleBuildIndex shows the precomputation path for query streams.
func ExampleBuildIndex() {
	b := rkranks.NewBuilder(false)
	for i := 0; i < 6; i++ {
		b.AddNode()
	}
	for i := 0; i < 5; i++ {
		b.MustAddEdge(int32(i), int32(i+1), float64(i+1))
	}
	g := b.Finalize()

	ix, err := rkranks.BuildIndex(g, rkranks.IndexParams{
		HubFraction: 0.5, RankFraction: 0.5, MaxK: 3, Strategy: rkranks.DegreeHubs,
	})
	if err != nil {
		log.Fatal(err)
	}
	e := rkranks.NewEngine(g, rkranks.Options{})
	e.SetIndex(ix)
	res, err := e.Query(rkranks.Indexed, 0, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, en := range res.Entries {
		fmt.Printf("node %d ranks node 0 #%d\n", en.Node, en.Rank)
	}
	// Output:
	// node 1 ranks node 0 #1
	// node 2 ranks node 0 #2
}
