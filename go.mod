module rkranks

go 1.24
