// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 6), plus micro-benchmarks for the core operations. Each
// BenchmarkTableN / BenchmarkFigureN runs the corresponding experiment of
// internal/experiments once per iteration at the Small scale; run
// cmd/rkbench for the full-scale paper-style tables.
package rkranks_test

import (
	"testing"

	"rkranks"
	"rkranks/internal/core"
	"rkranks/internal/experiments"
	"rkranks/internal/gen"
	"rkranks/internal/graph"
	"rkranks/internal/sssp"
)

func benchExperiment(b *testing.B, name string) {
	cfg := experiments.Small()
	r, err := experiments.NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Datasets are cached inside the runner; build them before timing.
	if _, err := r.Run(name); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(name); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper artifact (see DESIGN.md §5 / EXPERIMENTS.md).

func BenchmarkTable3ReverseTopKSizes(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkTable4AgreementRate(b *testing.B)      { benchExperiment(b, "table4") }
func BenchmarkFigure5CaseStudy(b *testing.B)         { benchExperiment(b, "figure5") }
func BenchmarkFigure6EnginesVsK(b *testing.B)        { benchExperiment(b, "figure6") }
func BenchmarkNaiveBaselineGap(b *testing.B)         { benchExperiment(b, "naive") }
func BenchmarkTable6HubSweepDBLP(b *testing.B)       { benchExperiment(b, "table6") }
func BenchmarkTable7HubSweepEpinions(b *testing.B)   { benchExperiment(b, "table7") }
func BenchmarkTable8IndexSweepDBLP(b *testing.B)     { benchExperiment(b, "table8") }
func BenchmarkTable9IndexSweepEpinions(b *testing.B) { benchExperiment(b, "table9") }
func BenchmarkTable10HubStrategies(b *testing.B)     { benchExperiment(b, "table10") }
func BenchmarkTable11BoundWins(b *testing.B)         { benchExperiment(b, "table11") }
func BenchmarkTable12BoundsMaxDegree(b *testing.B)   { benchExperiment(b, "table12") }
func BenchmarkTable13BoundsMinDegree(b *testing.B)   { benchExperiment(b, "table13") }
func BenchmarkTable14IndexUpdates(b *testing.B)      { benchExperiment(b, "table14") }
func BenchmarkTable15IndexConstruction(b *testing.B) { benchExperiment(b, "table15") }
func BenchmarkFigure7Bichromatic(b *testing.B)       { benchExperiment(b, "figure7") }

// Micro-benchmarks.

func benchGraph() *graph.Graph {
	return gen.DBLPLike(gen.DBLPLikeParams{Nodes: 3000, AttachPerNode: 6, ExtraCollabFactor: 0.5, Seed: 11})
}

func BenchmarkQueryNaive(b *testing.B)   { benchQuery(b, core.Naive) }
func BenchmarkQueryStatic(b *testing.B)  { benchQuery(b, core.Static) }
func BenchmarkQueryDynamic(b *testing.B) { benchQuery(b, core.Dynamic) }

func benchQuery(b *testing.B, algo core.Algorithm) {
	g := benchGraph()
	e := core.NewEngine(g, core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(algo, int32(i%g.N()), 10); err != nil {
			b.Fatal(err)
		}
	}
}

// Intra-query parallelism: the same workload as BenchmarkQueryDynamic with
// speculative refine workers. Results are byte-identical; compare ns/op
// against the serial benchmark to see the speedup (multi-core) or the
// pipeline overhead (single-core / oversubscribed).
func BenchmarkQueryDynamicRefine1(b *testing.B) { benchQueryRefine(b, 1) }
func BenchmarkQueryDynamicRefine4(b *testing.B) { benchQueryRefine(b, 4) }

func benchQueryRefine(b *testing.B, workers int) {
	g := benchGraph()
	e := core.NewEngine(g, core.Options{RefineWorkers: workers})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(core.Dynamic, int32(i%g.N()), 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryIndexed(b *testing.B) {
	g := benchGraph()
	ix, err := rkranks.BuildIndex(g, rkranks.IndexParams{
		HubFraction: 0.1, RankFraction: 0.1, MaxK: 20, Strategy: rkranks.DegreeHubs,
	})
	if err != nil {
		b.Fatal(err)
	}
	e := core.NewEngine(g, core.Options{})
	e.SetIndex(ix)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(core.Indexed, int32(i%g.N()), 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexBuild(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rkranks.BuildIndex(g, rkranks.IndexParams{
			HubFraction: 0.05, RankFraction: 0.05, MaxK: 20, Strategy: rkranks.DegreeHubs,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSSSPFull(b *testing.B) {
	g := benchGraph()
	s := sssp.New(g)
	dist := make([]float64, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sssp.AllDistances(s, int32(i%g.N()), dist)
	}
}

func BenchmarkRankRefinement(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rkranks.Rank(g, int32(i%g.N()), int32((i+1)%g.N()))
	}
}

func BenchmarkGraphBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gen.DBLPLike(gen.DBLPLikeParams{Nodes: 2000, AttachPerNode: 5, Seed: int64(i)})
	}
}

// Ablation: the refinement frontier cutoff (Algorithm 2's distance bound).
// Compare with BenchmarkQueryDynamic to see how much queue pressure the
// bound removes.
func BenchmarkQueryDynamicNoCutoff(b *testing.B) {
	g := benchGraph()
	e := core.NewEngine(g, core.Options{DisableDistanceCutoff: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(core.Dynamic, int32(i%g.N()), 10); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: bound strategies (the paper's Dynamic-Parent vs Dynamic-Three).
func BenchmarkQueryDynamicParentOnly(b *testing.B) {
	g := benchGraph()
	e := core.NewEngine(g, core.Options{Bounds: core.BoundParent})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(core.Dynamic, int32(i%g.N()), 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReverseTopK(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rkranks.ReverseTopK(g, int32(i%g.N()), 10)
	}
}
