package rkranks_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rkranks"
)

// mirror tracks the logical edge set a mutation schedule produces, so
// tests can rebuild the expected graph from scratch — an oracle that
// never trusts the live store's own bookkeeping.
type mirror struct {
	n     int
	w     map[[2]int32]float64
	pairs [][2]int32 // insertion-ordered keys of w, for random picks
}

func norm(u, v int32) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{u, v}
}

func newMirror(g *rkranks.Graph) *mirror {
	m := &mirror{n: g.N(), w: map[[2]int32]float64{}}
	g.Edges(func(e rkranks.Edge) bool {
		m.add(e.From, e.To, e.Weight)
		return true
	})
	return m
}

func (m *mirror) add(u, v int32, w float64) {
	k := norm(u, v)
	if _, ok := m.w[k]; !ok {
		m.pairs = append(m.pairs, k)
	}
	m.w[k] = w
}

func (m *mirror) del(u, v int32) {
	k := norm(u, v)
	delete(m.w, k)
	for i, p := range m.pairs {
		if p == k {
			m.pairs[i] = m.pairs[len(m.pairs)-1]
			m.pairs = m.pairs[:len(m.pairs)-1]
			return
		}
	}
}

// Op discriminators, derived through the public constructors.
var (
	opInsert = rkranks.InsertEdge(0, 1, 1).Op
	opDelete = rkranks.DeleteEdge(0, 1).Op
	opSet    = rkranks.SetWeight(0, 1, 1).Op
	opAdd    = rkranks.AddVertices(1).Op
)

// apply plays one mutation into the mirror (the mutation must be valid).
func (m *mirror) apply(mut rkranks.Mutation) {
	switch mut.Op {
	case opInsert, opSet:
		m.add(mut.U, mut.V, mut.Weight)
	case opDelete:
		m.del(mut.U, mut.V)
	case opAdd:
		c := mut.Count
		if c <= 0 {
			c = 1
		}
		m.n += c
	}
}

// build materializes the mirror as an immutable graph.
func (m *mirror) build() *rkranks.Graph {
	b := rkranks.NewBuilder(false)
	for i := 0; i < m.n; i++ {
		b.AddNode()
	}
	for k, w := range m.w {
		b.MustAddEdge(k[0], k[1], w)
	}
	return b.Finalize()
}

// randomBatch generates a batch of valid mutations against the mirror's
// current state (validity is per-op in application order: the live store
// applies batches sequentially against a clone). weightOnly restricts
// the batch to SetWeight ops, exercising the in-place patch path.
func (m *mirror) randomBatch(rng *rand.Rand, size int, weightOnly bool) []rkranks.Mutation {
	var ms []rkranks.Mutation
	for len(ms) < size {
		var mut rkranks.Mutation
		op := rng.Intn(100)
		switch {
		case weightOnly || op < 40:
			if len(m.pairs) == 0 {
				if weightOnly {
					return ms
				}
				continue
			}
			p := m.pairs[rng.Intn(len(m.pairs))]
			mut = rkranks.SetWeight(p[0], p[1], 0.25+rng.Float64()*4)
		case op < 65:
			u, v := int32(rng.Intn(m.n)), int32(rng.Intn(m.n))
			if _, ok := m.w[norm(u, v)]; ok {
				continue
			}
			mut = rkranks.InsertEdge(u, v, 0.25+rng.Float64()*4)
		case op < 85:
			if len(m.pairs) == 0 {
				continue
			}
			p := m.pairs[rng.Intn(len(m.pairs))]
			mut = rkranks.DeleteEdge(p[0], p[1])
		default:
			mut = rkranks.AddVertices(1 + rng.Intn(2))
		}
		m.apply(mut)
		ms = append(ms, mut)
	}
	return ms
}

// liveTestGraph builds a random connected undirected graph with no
// parallel edges (the mutation API refuses ambiguous pairs).
func liveTestGraph(n int, seed int64) *rkranks.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := rkranks.NewBuilder(false)
	for i := 0; i < n; i++ {
		b.AddNode()
	}
	seen := map[[2]int32]bool{}
	addEdge := func(u, v int32, w float64) {
		k := norm(u, v)
		if seen[k] {
			return
		}
		seen[k] = true
		b.MustAddEdge(u, v, w)
	}
	for i := 1; i < n; i++ {
		addEdge(int32(i), int32(rng.Intn(i)), 0.25+rng.Float64()*4)
		if rng.Intn(2) == 0 {
			addEdge(int32(i), int32(rng.Intn(i)), 0.25+rng.Float64()*4)
		}
	}
	return b.Finalize()
}

func sameEntries(a, b []rkranks.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLiveMutationOracle is the correctness contract of the mutation
// pipeline: after every applied batch, every engine's answers on the
// live backend are byte-identical to a from-scratch build of the mutated
// graph — across random schedules, with an attached index (invalidated
// or replaced under mutation) and hub labels (stale until relabeled).
func TestLiveMutationOracle(t *testing.T) {
	const k = 5
	ctx := context.Background()
	algos := []rkranks.Algorithm{
		rkranks.Naive, rkranks.Static, rkranks.Dynamic, rkranks.Indexed, rkranks.HubLabel,
	}
	for _, seed := range []int64{3, 11, 29} {
		rng := rand.New(rand.NewSource(seed))
		g := liveTestGraph(48, seed)
		m := newMirror(g)

		ix, err := rkranks.NewConcurrentIndex(g, rkranks.IndexParams{MaxK: 20})
		if err != nil {
			t.Fatal(err)
		}
		labels, err := rkranks.BuildHubLabels(g, rkranks.HubLabelParams{Strategy: rkranks.DegreeHubs})
		if err != nil {
			t.Fatal(err)
		}
		lb, err := rkranks.NewLiveBackend(g, rkranks.LiveOptions{Index: ix, Labels: labels})
		if err != nil {
			t.Fatal(err)
		}

		gen := uint64(1)
		for batch := 0; batch < 6; batch++ {
			weightOnly := batch%2 == 1
			ms := m.randomBatch(rng, 4+rng.Intn(4), weightOnly)
			if len(ms) == 0 {
				continue
			}
			info, err := lb.Mutate(ctx, ms)
			if err != nil {
				t.Fatalf("seed %d batch %d: mutate: %v", seed, batch, err)
			}
			gen++
			if info.Generation != gen {
				t.Fatalf("seed %d batch %d: generation %d, want %d", seed, batch, info.Generation, gen)
			}
			if weightOnly && info.Rebuilt {
				t.Fatalf("seed %d batch %d: weight-only batch took the rebuild path", seed, batch)
			}
			if info.Nodes != m.n || info.Edges != int64(len(m.w)) {
				t.Fatalf("seed %d batch %d: reported shape (%d,%d), mirror (%d,%d)",
					seed, batch, info.Nodes, info.Edges, m.n, len(m.w))
			}

			// Oracle: a from-scratch engine over the mirrored edge set.
			oracle := rkranks.NewEngine(m.build(), rkranks.Options{})
			for probe := 0; probe < 6; probe++ {
				q := int32(rng.Intn(m.n))
				want, err := oracle.Query(rkranks.Dynamic, q, k)
				if err != nil {
					t.Fatalf("oracle query: %v", err)
				}
				for _, a := range algos {
					got, err := lb.QueryContext(ctx, a, q, k)
					if err != nil {
						t.Fatalf("seed %d batch %d %v q=%d: %v", seed, batch, a, q, err)
					}
					if !sameEntries(got.Entries, want.Entries) {
						t.Fatalf("seed %d batch %d %v q=%d: %v, oracle %v",
							seed, batch, a, q, got.Entries, want.Entries)
					}
					if got.Generation != gen {
						t.Fatalf("seed %d batch %d %v q=%d: stamped generation %d, want %d",
							seed, batch, a, q, got.Generation, gen)
					}
				}
			}

			// After the background relabel completes, HubLabel answers from
			// fresh labels must STILL match the oracle.
			wait, cancel := context.WithTimeout(ctx, 30*time.Second)
			err = lb.AwaitLabels(wait)
			cancel()
			if err != nil {
				t.Fatalf("seed %d batch %d: await labels: %v", seed, batch, err)
			}
			q := int32(rng.Intn(m.n))
			want, _ := oracle.Query(rkranks.Dynamic, q, k)
			got, err := lb.QueryContext(ctx, rkranks.HubLabel, q, k)
			if err != nil {
				t.Fatalf("seed %d batch %d relabeled hublabel: %v", seed, batch, err)
			}
			if !sameEntries(got.Entries, want.Entries) {
				t.Fatalf("seed %d batch %d relabeled hublabel q=%d: %v, oracle %v",
					seed, batch, q, got.Entries, want.Entries)
			}
		}
	}
}

// TestLiveClusterOracle runs the same contract through a live cluster:
// after every mutation fan-out, merged answers equal a from-scratch
// single-node build, across shard counts and with a generation-aware
// response cache on top (whose pre-mutation entries must be orphaned).
func TestLiveClusterOracle(t *testing.T) {
	const k = 5
	ctx := context.Background()
	g := liveTestGraph(64, 17)
	for _, shards := range []int{1, 2, 4, 8} {
		for _, cached := range []bool{false, true} {
			rng := rand.New(rand.NewSource(int64(100*shards + 7)))
			m := newMirror(g)
			cl, err := rkranks.NewCluster(g, rkranks.Options{}, rkranks.ClusterOptions{
				Shards: shards, Live: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			var backend interface {
				QueryContext(ctx context.Context, a rkranks.Algorithm, q int32, k int) (*rkranks.Result, error)
			} = cl
			if cached {
				cb, err := rkranks.NewCachedBackend(cl, rkranks.CacheOptions{MaxMB: 8})
				if err != nil {
					t.Fatal(err)
				}
				backend = cb
			}

			probes := make([]int32, 6)
			for i := range probes {
				probes[i] = int32(rng.Intn(g.N()))
			}
			// Prime the cache (when present) with pre-mutation answers.
			for _, q := range probes {
				if _, err := backend.QueryContext(ctx, rkranks.Dynamic, q, k); err != nil {
					t.Fatalf("shards=%d cached=%v prime q=%d: %v", shards, cached, q, err)
				}
			}

			for batch := 0; batch < 3; batch++ {
				ms := m.randomBatch(rng, 5, batch == 1)
				if len(ms) == 0 {
					continue
				}
				info, err := cl.Mutate(ctx, ms)
				if err != nil {
					t.Fatalf("shards=%d cached=%v batch %d: mutate: %v", shards, cached, batch, err)
				}
				if cl.Generation() != info.Generation {
					t.Fatalf("shards=%d: coordinator generation %d, info %d", shards, cl.Generation(), info.Generation)
				}
				oracle := rkranks.NewEngine(m.build(), rkranks.Options{})
				for _, q := range probes {
					want, err := oracle.Query(rkranks.Dynamic, q, k)
					if err != nil {
						t.Fatalf("oracle: %v", err)
					}
					// Twice: the second hit answers from cache (when present)
					// and must be equally post-mutation.
					for pass := 0; pass < 2; pass++ {
						got, err := backend.QueryContext(ctx, rkranks.Dynamic, q, k)
						if err != nil {
							t.Fatalf("shards=%d cached=%v batch %d q=%d: %v", shards, cached, batch, q, err)
						}
						if !sameEntries(got.Entries, want.Entries) {
							t.Fatalf("shards=%d cached=%v batch %d q=%d pass %d: %v, oracle %v",
								shards, cached, batch, q, pass, got.Entries, want.Entries)
						}
					}
				}
				// Batch queries merge per query; same contract.
				res, err := cl.QueryManyContext(ctx, rkranks.Dynamic, probes, k)
				if err != nil {
					t.Fatalf("shards=%d batch query: %v", shards, err)
				}
				for i, q := range probes {
					want, _ := oracle.Query(rkranks.Dynamic, q, k)
					if !sameEntries(res[i].Entries, want.Entries) {
						t.Fatalf("shards=%d batch path q=%d: %v, oracle %v", shards, q, res[i].Entries, want.Entries)
					}
				}
			}
			cl.Close()
		}
	}
}

// TestLiveChurn hammers one live backend with concurrent readers and a
// mutator (run under -race): queries must always succeed against a
// complete generation, generations must be monotone per reader, and the
// final state must equal a from-scratch build.
func TestLiveChurn(t *testing.T) {
	const k = 4
	ctx := context.Background()
	g := liveTestGraph(40, 23)
	m := newMirror(g)
	lb, err := rkranks.NewLiveBackend(g, rkranks.LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + r)))
			var lastGen uint64
			for !stop.Load() {
				q := int32(rng.Intn(40)) // original vertices stay valid forever
				res, err := lb.QueryContext(ctx, rkranks.Dynamic, q, k)
				if err != nil {
					errs <- err
					return
				}
				if res.Generation < lastGen {
					errs <- fmt.Errorf("reader %d: generation moved backwards: %d -> %d", r, lastGen, res.Generation)
					return
				}
				lastGen = res.Generation
				if len(res.Entries) != k {
					errs <- fmt.Errorf("reader %d: %d entries, want %d", r, len(res.Entries), k)
					return
				}
			}
		}(r)
	}

	rng := rand.New(rand.NewSource(77))
	for batch := 0; batch < 25; batch++ {
		ms := m.randomBatch(rng, 3, batch%3 != 0)
		if len(ms) == 0 {
			continue
		}
		if _, err := lb.Mutate(ctx, ms); err != nil {
			t.Fatalf("churn batch %d: %v", batch, err)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiescent state equals a from-scratch build.
	oracle := rkranks.NewEngine(m.build(), rkranks.Options{})
	for q := int32(0); q < 40; q += 7 {
		want, err := oracle.Query(rkranks.Dynamic, q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := lb.QueryContext(ctx, rkranks.Dynamic, q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !sameEntries(got.Entries, want.Entries) {
			t.Fatalf("post-churn q=%d: %v, oracle %v", q, got.Entries, want.Entries)
		}
	}
}

// TestLiveMutateValidation: malformed batches are rejected atomically —
// typed invalid-argument errors, no state change, no generation bump.
func TestLiveMutateValidation(t *testing.T) {
	ctx := context.Background()
	g := liveTestGraph(10, 31)
	lb, err := rkranks.NewLiveBackend(g, rkranks.LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}

	before, err := lb.QueryContext(ctx, rkranks.Dynamic, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]rkranks.Mutation{
		{},                                      // empty batch
		{rkranks.InsertEdge(0, 99, 1)},          // unknown endpoint
		{rkranks.DeleteEdge(0, 0)},              // absent edge
		{rkranks.SetWeight(0, 1, -1)},           // invalid weight (pair may exist)
		{rkranks.InsertEdge(1, 2, 1), {Op: 77}}, // valid op then junk: all-or-nothing
	}
	for i, ms := range bad {
		if _, err := lb.Mutate(ctx, ms); err == nil {
			t.Errorf("batch %d accepted", i)
		}
	}
	after, err := lb.QueryContext(ctx, rkranks.Dynamic, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if after.Generation != before.Generation {
		t.Fatalf("rejected batches moved the generation: %d -> %d", before.Generation, after.Generation)
	}
	if !sameEntries(after.Entries, before.Entries) {
		t.Fatal("rejected batches changed answers")
	}
}
