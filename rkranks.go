// Package rkranks answers reverse k-ranks queries on large weighted graphs,
// implementing "Reverse k-Ranks Queries on Large Graphs" (Qian, Li,
// Mamoulis, Liu, Cheung — EDBT 2017).
//
// Given a query node q, the reverse k-ranks query returns the k nodes p
// with the smallest Rank(p, q), where Rank(p, q) is q's position in p's
// list of nodes ordered by shortest-path distance. Unlike reverse top-k /
// reverse k-NN queries, the result always has exactly k entries, which
// makes it usable for "cold" query nodes (new users, remote locations)
// and for shortlisting around "hot" ones.
//
// # Quick start
//
//	b := rkranks.NewBuilder(false) // undirected
//	alice, bob := b.AddLabeledNode("alice"), b.AddLabeledNode("bob")
//	b.MustAddEdge(alice, bob, 1.0)
//	g := b.Finalize()
//
//	e := rkranks.NewEngine(g, rkranks.Options{})
//	res, err := e.Query(rkranks.Dynamic, alice, 2)
//
// Five engines share one result semantics and differ only in cost:
//
//   - Naive — brute force over all nodes (baseline).
//   - Static — SDS-tree filter-and-refine (paper Section 3).
//   - Dynamic — Dynamic Bounded SDS-tree (Section 4); the default choice
//     without precomputation.
//   - Indexed — Dynamic plus the Check/Reverse-Rank dictionaries
//     (Section 5); fastest once an Index is built, and the index keeps
//     improving as queries run.
//   - HubLabel — Dynamic plus rank lower bounds read off a precomputed
//     pruned 2-hop hub labeling (BuildHubLabels, Options.Labels): most
//     candidates are disqualified by a label scan alone, without any
//     per-candidate Dijkstra work.
//
// Bichromatic queries (Definitions 3-4: query nodes of one class, results
// of another, e.g. stores and communities on a road network) are selected
// through Options.Candidates and Options.Counted.
//
// # Concurrency
//
// All functionality is pure Go with no dependencies outside the standard
// library. An Engine is not safe for concurrent use (it owns per-query
// workspaces); a Pool holds one engine per permit and serves queries from
// many goroutines. Indexes come in two interchangeable implementations
// behind the Index interface: BuildIndex returns a single-goroutine index
// for a dedicated engine, and NewConcurrentIndex returns a lock-striped
// index that any number of engines may share — Indexed queries from a
// whole pool then read one set of dictionaries and feed their refinements
// back into it, so the index improves with aggregate traffic:
//
//	ix, _ := rkranks.NewConcurrentIndex(g, rkranks.IndexParams{
//		HubFraction: 0.1, RankFraction: 0.1, MaxK: 100,
//		Strategy: rkranks.DegreeHubs,
//	})
//	pool, _ := rkranks.NewPoolWithIndex(g, rkranks.Options{}, 0, ix)
//	res, _ := pool.Query(rkranks.Indexed, q, 10) // safe from any goroutine
//
// Pools parallelize ACROSS queries; Options.RefineWorkers parallelizes
// WITHIN one: the rank refinements — the dominant query cost — run
// speculatively on that many worker goroutines while the traversal stays
// on the calling goroutine, cutting single-query latency on idle cores:
//
//	e := rkranks.NewEngine(g, rkranks.Options{RefineWorkers: 4})
//	res, _ := e.Query(rkranks.Dynamic, q, 10)
//
// Results are byte-identical to a serial run for every engine; only the
// work counters (Stats.RefineSettled, Stats.Speculative*) can tell the
// difference. Default-sized pools budget GOMAXPROCS across engines and
// their refine workers; see the README's "Intra-query parallelism" for
// when to prefer which knob.
//
// Every query entry point has a context-aware variant
// (Engine.QueryContext, Pool.QueryContext, Pool.QueryManyContext):
// cancellation or deadline expiry stops the traversal and every in-flight
// rank refinement within a bounded number of settles, discarding — never
// applying — partial work, so engines and shared indexes stay consistent.
// Malformed requests fail fast with typed errors (ErrInvalidArgument and
// its refinements). cmd/rkserve serves all of this over HTTP with
// admission control and graceful drain; see the README's "Serving over
// HTTP".
//
// Beyond one process, NewCluster partitions the candidate class into
// vertex shards — one masked engine pool each — behind a scatter-gather
// coordinator whose merged results are byte-identical to a single pool's:
// results are canonical (the minimum k entries by (rank, node id),
// independent of engine, index state, and pruning order), so each shard's
// answer certifies a rank floor on everything it withheld and the
// coordinator fetches only what the merged cutoff cannot exclude.
// cmd/rkcluster serves the same coordinator over HTTP, with shards
// in-process or on remote rkserve instances (rkserve -shard i/P); see the
// README's "Clustered serving". Each shard may be a replica SET
// (ClusterOptions.Replicas, or per-shard replica lists in a Topology
// file): queries load-balance across healthy replicas and fail over
// without changing a byte of any answer, and replicas inherit a leader's
// learned index state over /v1/index/snapshot + /v1/index/deltas instead
// of re-deriving it from their own traffic; see the README's
// "Replication & failover".
package rkranks

import (
	"errors"
	"fmt"
	"io"
	"os"

	"rkranks/internal/api"
	"rkranks/internal/cache"
	"rkranks/internal/cluster"
	"rkranks/internal/core"
	"rkranks/internal/graph"
	"rkranks/internal/hub"
	"rkranks/internal/live"
	"rkranks/internal/ppr"
	"rkranks/internal/rank"
	"rkranks/internal/ridx"
	"rkranks/internal/sssp"
	"rkranks/internal/topk"
)

// Re-exported core types. The aliases give external packages full access to
// the implementation's methods without reaching into internal packages.
type (
	// Graph is an immutable weighted graph in CSR form; build one with a
	// Builder or load one with ReadGraph.
	Graph = graph.Graph
	// Builder accumulates nodes and edges and produces an immutable Graph.
	Builder = graph.Builder
	// Edge is a weighted edge, as reported by Graph.Edges.
	Edge = graph.Edge
	// Engine evaluates reverse k-ranks queries; it owns reusable
	// workspaces and is not safe for concurrent use.
	Engine = core.Engine
	// Options configures an Engine (bound selection, bichromatic classes).
	Options = core.Options
	// Algorithm selects one of the four engines.
	Algorithm = core.Algorithm
	// Bounds selects the Theorem-2 lower-bound components for the dynamic
	// engines.
	Bounds = core.Bounds
	// Result is a query answer: k (node, rank) entries plus work counters.
	Result = core.Result
	// Stats reports the work one query performed.
	Stats = core.Stats
	// Entry pairs a node with a rank value.
	Entry = rank.Entry
	// Index is the Section-5 Check/Reverse-Rank dictionary structure, an
	// interface over the single-goroutine implementation (BuildIndex /
	// LoadIndex) and the concurrency-safe one (NewConcurrentIndex /
	// LoadConcurrentIndex). Index.Concurrent reports which kind it is.
	Index = ridx.Index
	// ConcurrentIndex is the lock-striped Index implementation that may be
	// shared by any number of engines (see NewConcurrentIndex).
	ConcurrentIndex = ridx.ShardedIndex
	// HubStrategy selects how index hubs are chosen.
	HubStrategy = hub.Strategy
	// Pool serves queries concurrently (one engine per permit); built with
	// NewPoolWithIndex it serves Indexed queries against one shared index.
	Pool = core.Pool
	// Cluster scatters each query across vertex shards and merges the
	// answers with rank-floor pruning; results are byte-identical to a
	// single-node Pool (see NewCluster).
	Cluster = cluster.Coordinator
	// Floor is the certified withheld-candidate bound a Result exports
	// for scatter-gather merging (Result.Floor).
	Floor = core.Floor
	// CachedBackend decorates a Pool or Cluster with a response cache and
	// singleflight coalescing (see NewCachedBackend).
	CachedBackend = cache.Backend
	// QueryBackend is the query surface CachedBackend decorates; Pool and
	// Cluster both satisfy it.
	QueryBackend = cache.Target
	// CacheSnapshot reports a response cache's counters
	// (CachedBackend.Cache().Stats()).
	CacheSnapshot = cache.Snapshot
	// HubLabels is a pruned 2-hop hub labeling: per-node sorted hub
	// distance lists plus per-hub inverted lists, built once with
	// BuildHubLabels and shared read-only by any number of engines via
	// Options.Labels to enable the HubLabel engine (see SaveHubLabels /
	// LoadHubLabels for the on-disk form).
	HubLabels = hub.Labels
)

// Algorithm values.
const (
	Naive    = core.Naive
	Static   = core.Static
	Dynamic  = core.Dynamic
	Indexed  = core.Indexed
	HubLabel = core.HubLabel
)

// Bound components (see the paper's Theorem 2 and Tables 12-13).
const (
	BoundParent = core.BoundParent
	BoundHeight = core.BoundHeight
	BoundCount  = core.BoundCount
	BoundsAll   = core.BoundsAll
)

// Hub-selection strategies (paper Section 5.1).
const (
	RandomHubs    = hub.Random
	DegreeHubs    = hub.DegreeFirst
	ClosenessHubs = hub.ClosenessFirst
)

// RankUnreachable is the rank reported when no path exists.
const RankUnreachable = rank.Unreachable

// Typed request-validation errors, surfaced by Engine and Pool query
// entry points (including QueryContext/QueryManyContext) and designed for
// errors.Is dispatch at serving boundaries: every one of them wraps
// ErrInvalidArgument, so a server can map the whole family to a 400-class
// response and still branch on the specific cause. Cancellation and
// deadline expiry surface as the standard context errors
// (context.Canceled, context.DeadlineExceeded).
var (
	ErrInvalidArgument  = core.ErrInvalidArgument
	ErrUnknownAlgorithm = core.ErrUnknownAlgorithm
	ErrInvalidK         = core.ErrInvalidK
	ErrInvalidQueryNode = core.ErrInvalidQueryNode
	ErrIndexRequired    = core.ErrIndexRequired
	ErrLabelsRequired   = core.ErrLabelsRequired
)

// ErrInvalidOptions is the root of every constructor-options validation
// error (ClusterOptions, CacheOptions, IndexParams, ...): malformed
// options fail fast with an error wrapping it, so callers can errors.Is
// the whole family. Every options struct follows one convention — the
// zero value of a field means "use the sane default"; only values that
// are affirmatively out of range are errors.
var ErrInvalidOptions = errors.New("rkranks: invalid options")

// optErr builds one ErrInvalidOptions-wrapping validation error.
func optErr(format string, args ...any) error {
	return fmt.Errorf("rkranks: "+format+": %w", append(args, ErrInvalidOptions)...)
}

// NewBuilder returns a graph builder; directed selects edge orientation.
func NewBuilder(directed bool) *Builder { return graph.NewBuilder(directed) }

// NewEngine returns a query engine over g.
func NewEngine(g *Graph, opts Options) *Engine { return core.NewEngine(g, opts) }

// NewPool returns a pool of engines for concurrent index-free querying
// (size <= 0 uses GOMAXPROCS). To serve Indexed queries from a pool, use
// NewPoolWithIndex.
func NewPool(g *Graph, opts Options, size int) *Pool { return core.NewPool(g, opts, size) }

// NewPoolWithIndex returns a pool of size engines (size <= 0 uses
// GOMAXPROCS) sharing one concurrency-safe index, enabling Indexed — the
// fastest engine — for concurrent querying: every query's refinements feed
// the shared dictionaries, so the index learns from the pool's aggregate
// traffic. The index must come from NewConcurrentIndex or
// LoadConcurrentIndex; a BuildIndex result is rejected (it is not safe to
// share).
func NewPoolWithIndex(g *Graph, opts Options, size int, ix Index) (*Pool, error) {
	return core.NewPoolWithIndex(g, opts, size, ix)
}

// ErrShardUnavailable is the typed availability error a Cluster reports
// when shard backends cannot answer (errors.Is-matchable; wrapped by the
// per-shard detail errors).
var ErrShardUnavailable = cluster.ErrShardUnavailable

// ClusterOptions configures NewCluster. The zero value is valid: one
// shard, modulo partitioning, default pool size, degraded (partial)
// answers on shard failure.
type ClusterOptions struct {
	// Shards is the number of vertex shards (0 defaults to 1).
	Shards int
	// Partitioner assigns vertices to shards: "modulo" (the default) or
	// "degree" (degree-balanced, better on power-law graphs).
	Partitioner string
	// PoolSize sizes each shard's engine pool (<= 0 derives a default).
	PoolSize int
	// Index, when non-nil, is ONE concurrency-safe index (from
	// NewConcurrentIndex / LoadConcurrentIndex) shared by every shard,
	// enabling Indexed queries cluster-wide exactly like NewPoolWithIndex
	// does for a single pool. In Live mode it is used only as a sizing
	// template: each live shard starts its OWN empty index at the same
	// MaxK (live shards cannot share one — each store swaps in a fresh
	// index when a topology mutation forces a rebuild).
	Index Index
	// StrictConsistency refuses queries whenever a shard is unavailable
	// instead of answering partially (Result.Partial).
	StrictConsistency bool
	// Replicas runs each shard as a replica set of this many identical
	// backends (0 or 1 means unreplicated): queries load-balance across
	// healthy replicas and fail over transparently — answers are
	// byte-identical either way — and mutations fan to every replica in
	// lockstep. See the README's "Replication & failover".
	Replicas int
	// FirstRoundK overrides the reduced first scatter round's per-shard k
	// (0 = auto ceil(k/Shards)+2; >= k disables rank-floor pruning).
	FirstRoundK int
	// Live serves a MUTABLE graph: each shard becomes a live store and
	// the cluster accepts Cluster.Mutate batches, fanned to every shard
	// in lockstep. Queries refuse to merge answers from two graph
	// generations (they retry, then fail with a generation-skew error).
	Live bool
	// Labels attaches a hub labeling to every live shard (Live only; see
	// NewLiveBackend for staleness semantics under mutations).
	Labels *HubLabels
	// Relabel tunes the live shards' background relabeling (Live only).
	Relabel RelabelParams
}

// NewCluster builds an in-process sharded cluster over g: one masked
// engine pool per vertex shard behind a scatter-gather coordinator whose
// merged results are byte-identical to a single-node pool's — entries,
// ranks, and tie-breaks included — while each shard refines only its own
// candidates. The same coordinator type also fronts remote rkserve shards
// (see cmd/rkcluster); this constructor covers the in-process topology,
// the natural first step before splitting shards across machines.
//
// With ClusterOptions.Live, shards are live stores instead of static
// pools and the coordinator accepts mutation batches (Cluster.Mutate).
func NewCluster(g *Graph, opts Options, co ClusterOptions) (*Cluster, error) {
	if co.Shards == 0 {
		co.Shards = 1
	}
	if co.Shards < 0 {
		return nil, optErr("ClusterOptions.Shards must be >= 1, got %d", co.Shards)
	}
	if co.Replicas < 0 {
		return nil, optErr("ClusterOptions.Replicas must be >= 0, got %d", co.Replicas)
	}
	part, err := cluster.ParsePartitioner(co.Partitioner)
	if err != nil {
		return nil, optErr("%s", err)
	}
	cfg := cluster.Config{
		StrictConsistency: co.StrictConsistency,
		FirstRoundK:       co.FirstRoundK,
	}
	if co.Live {
		indexMaxK := 0
		if co.Index != nil {
			indexMaxK = co.Index.MaxK()
		}
		return cluster.NewLocalLiveReplicated(g, live.Config{
			Options:  opts,
			PoolSize: co.PoolSize,
			Labels:   co.Labels,
			Relabel:  co.Relabel,
		}, indexMaxK, part, co.Shards, co.Replicas, cfg)
	}
	return cluster.NewLocalReplicated(g, opts, part, co.Shards, co.Replicas, co.PoolSize, co.Index, cfg)
}

// Declarative cluster topology. cmd/rkcluster boots from one JSON
// document instead of positional flags: the shard layout, the replica
// set behind each shard, and the coordinator options all live in one
// reviewable file (see the README's "Replication & failover" for the
// format). The types are shared with the wire package, so a topology
// serializes the same way everywhere.
type (
	// Topology declares a whole cluster: coordinator options plus either
	// a Local section (in-process shards) or a Shards list (remote
	// replica sets). The zero value of every field means "use the sane
	// default".
	Topology = api.Topology
	// TopologyShard is one shard's replica set: the rkserve base URLs
	// that all serve the same shard mask.
	TopologyShard = api.TopologyShard
	// LocalTopology declares in-process shards (the -local equivalent).
	LocalTopology = api.LocalTopology
)

// ReadTopology parses and validates a topology document (strict JSON:
// unknown fields are errors, so typos fail the boot instead of silently
// meaning their default). Invalid documents fail with an error wrapping
// ErrInvalidOptions.
func ReadTopology(r io.Reader) (*Topology, error) {
	t, err := api.ReadTopology(r)
	if err != nil {
		return nil, optErr("%s", err)
	}
	return t, nil
}

// ValidateTopology checks a programmatically built Topology the same way
// ReadTopology checks a parsed one, returning an ErrInvalidOptions-
// wrapping error for out-of-range values.
func ValidateTopology(t *Topology) error {
	if err := t.Validate(); err != nil {
		return optErr("%s", err)
	}
	return nil
}

// ReplicatedIndex wraps a ConcurrentIndex with a replication delta log:
// every dictionary refinement the index learns is also appended to a
// bounded log, so rkserve can stream the learned state to follower
// replicas (GET /v1/index/snapshot + /v1/index/deltas) instead of each
// replica re-deriving it from its own traffic. It implements Index and
// is safe to share exactly like the ConcurrentIndex it wraps.
type ReplicatedIndex = ridx.Replicated

// NewReplicatedIndex wraps ix for replication with a default-sized delta
// log. Pass the result anywhere an Index is accepted (NewPoolWithIndex,
// ClusterOptions.Index).
func NewReplicatedIndex(ix *ConcurrentIndex) *ReplicatedIndex {
	return ridx.NewReplicated(ix, 0)
}

// Live mutation surface. A LiveBackend (or a Live cluster) serves the
// same query API as a Pool while accepting mutation batches that change
// the graph between queries — never during one. See the README's "Live
// mutations" for the update model (in-place weight patches vs background
// rebuilds) and the staleness semantics of hub labelings under churn.
type (
	// Mutation is one graph edit: an edge insert/delete, a weight change,
	// or a vertex addition. Build them with InsertEdge / DeleteEdge /
	// SetWeight / AddVertices.
	Mutation = graph.Mutation
	// MutateInfo summarizes one applied mutation batch: the generation it
	// produced and whether it patched in place or rebuilt the graph.
	MutateInfo = live.MutateInfo
	// LiveBackend serves queries over a mutable graph: reads are
	// lock-free in the hot loops, mutation batches apply under a brief
	// exclusive barrier (or build replacement state in the background and
	// swap it in atomically), and every applied batch advances
	// Result.Generation.
	LiveBackend = live.Store
	// RelabelParams tunes a live backend's background hub relabeling
	// (zero value: rebuild a same-sized labeling with default
	// parallelism).
	RelabelParams = live.RelabelParams
)

// InsertEdge mutates: add edge u→v (both directions when the graph is
// undirected) with weight w. It fails on a duplicate of an existing edge.
func InsertEdge(u, v int32, w float64) Mutation { return graph.InsertEdge(u, v, w) }

// DeleteEdge mutates: remove the edge u→v. It fails when no such edge
// exists, or when parallel edges make the pair ambiguous.
func DeleteEdge(u, v int32) Mutation { return graph.DeleteEdge(u, v) }

// SetWeight mutates: change the weight of the existing edge u→v to w.
// Batches consisting only of weight changes take the cheap in-place
// update path.
func SetWeight(u, v int32, w float64) Mutation { return graph.SetWeight(u, v, w) }

// AddVertices mutates: append count isolated vertices (ids |V|..|V|+count-1),
// typically followed by InsertEdge mutations wiring them in.
func AddVertices(count int) Mutation { return graph.AddVertices(count) }

// LiveOptions configures NewLiveBackend. The zero value is valid: no
// index, no labels, default pool size and relabeling.
type LiveOptions struct {
	// Options configures the engines exactly like NewPool; bichromatic
	// Candidates/Counted masks are carried across rebuilds (new vertices
	// join both classes).
	Options Options
	// PoolSize sizes the engine pool (<= 0 derives a default).
	PoolSize int
	// Index, when non-nil, enables Indexed queries; it must be the
	// concurrency-safe kind (NewConcurrentIndex / LoadConcurrentIndex).
	// Weight patches invalidate it in place (it re-learns from traffic);
	// topology rebuilds replace it with an empty index at the same MaxK.
	Index Index
	// Labels, when non-nil, enables HubLabel queries. Mutations mark the
	// labeling stale: HubLabel queries transparently fall back to Dynamic
	// (identical answers, less pruning) until a background relabel
	// completes.
	Labels *HubLabels
	// Relabel tunes the background relabeling that runs after mutations
	// when Labels were attached.
	Relabel RelabelParams
}

// NewLiveBackend wraps g in a mutable store: LiveBackend.Mutate applies
// batches of edits, and queries (QueryContext / QueryManyContext) always
// observe a complete generation — a batch either happened entirely
// before a query or entirely after it, never midway. Weight-only batches
// patch the CSR arrays in place under a brief exclusive barrier;
// topology changes rebuild graph, pool, and index in the background
// while the old state keeps serving, then swap atomically. Answers after
// any batch are byte-identical to rebuilding from scratch:
//
//	lb, _ := rkranks.NewLiveBackend(g, rkranks.LiveOptions{})
//	info, _ := lb.Mutate(ctx, []rkranks.Mutation{rkranks.SetWeight(u, v, 2.5)})
//	res, _ := lb.QueryContext(ctx, rkranks.Dynamic, q, 10) // res.Generation == info.Generation
func NewLiveBackend(g *Graph, o LiveOptions) (*LiveBackend, error) {
	return live.NewStore(g, live.Config{
		Options:  o.Options,
		PoolSize: o.PoolSize,
		Index:    o.Index,
		Labels:   o.Labels,
		Relabel:  o.Relabel,
	})
}

// HTTP client for rkserve / rkcluster instances. The same wire types
// back the servers themselves, so the client is always in sync with the
// protocol (one error envelope, one request schema, versioned paths).
type (
	// Client is a typed HTTP client for the /v1 API: Query, Batch,
	// Mutate, Stats, Health. Safe for concurrent use.
	Client = api.Client
	// StatusError is the typed error a Client returns for non-2xx
	// responses: HTTP status, machine-readable code, and the server's
	// Retry-After hint for 429/503 (errors.As-matchable).
	StatusError = api.StatusError
	// ClientAlgorithm names an engine on the wire ("dynamic", "indexed",
	// ...); convert with ClientAlgorithm(Dynamic.String()) or pass the
	// zero value to use the server's default.
	ClientAlgorithm = api.Algorithm
)

// NewClient returns a Client for the rkserve or rkcluster instance at
// base (e.g. "http://localhost:8080"):
//
//	c := rkranks.NewClient("http://localhost:8080")
//	res, err := c.Query(ctx, "", q, 10, 0) // server-default algorithm, no timeout
func NewClient(base string) *Client { return api.NewClient(base) }

// CacheOptions configures NewCachedBackend. The zero value is valid
// (64 MiB budget, default lock-shard count).
type CacheOptions struct {
	// MaxMB is the cache-wide budget in MiB (0 defaults to 64). The
	// cache stores canonical results only, so its answers are
	// byte-identical to the backend recomputing them — even while a
	// shared dynamic index keeps refining (see the cache package docs).
	MaxMB int
	// Shards overrides the cache's lock-shard count (0 picks a default).
	Shards int
}

// NewCachedBackend wraps a Pool or Cluster with a byte-budgeted response
// cache plus singleflight coalescing: repeated queries answer from
// memory, and concurrent duplicates admit ONE engine permit while the
// followers wait on the leader's canonical result. The wrapper serves
// the same query surface as what it wraps, so it drops in anywhere a
// Pool or Cluster was used (including server configurations; rkserve and
// rkcluster expose it as -cache-mb):
//
//	pool, _ := rkranks.NewPoolWithIndex(g, rkranks.Options{}, 0, ix)
//	cached, _ := rkranks.NewCachedBackend(pool, rkranks.CacheOptions{MaxMB: 64})
//	res, _ := cached.QueryContext(ctx, rkranks.Indexed, q, 10)
func NewCachedBackend(backend QueryBackend, opts CacheOptions) (*CachedBackend, error) {
	if opts.MaxMB == 0 {
		opts.MaxMB = 64
	}
	if opts.MaxMB < 0 {
		return nil, optErr("CacheOptions.MaxMB must be >= 1, got %d", opts.MaxMB)
	}
	return cache.NewBackend(backend, cache.Config{
		MaxBytes: int64(opts.MaxMB) << 20,
		Shards:   opts.Shards,
	})
}

// SaveIndex writes a built index (either implementation) to a file; the
// on-disk format does not record which implementation produced it.
func SaveIndex(path string, ix Index) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ix.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadIndex reads an index written by SaveIndex into the single-goroutine
// implementation (for a dedicated Engine). Use LoadConcurrentIndex for an
// index a Pool can share.
func LoadIndex(path string) (Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ix, err := ridx.Read(f)
	if err != nil {
		return nil, err
	}
	return ix, nil
}

// LoadConcurrentIndex reads an index written by SaveIndex into the
// concurrency-safe implementation, ready for NewPoolWithIndex.
func LoadConcurrentIndex(path string) (*ConcurrentIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ridx.ReadSharded(f)
}

// HubLabelParams configures BuildHubLabels.
type HubLabelParams struct {
	// Count is the number of hub roots H (clamped to |V|; <= 0 defaults to
	// |V|, a complete labeling — exact distances for every reachable pair
	// and the strongest query-time pruning). Partial labelings (H < |V|)
	// cost less to build and store; the engine simply falls back to CSR
	// refinements more often.
	Count int
	// Strategy orders the roots; the zero value is RandomHubs, and
	// DegreeHubs prunes best on the skewed-degree graphs of the paper.
	Strategy HubStrategy
	// Workers bounds build parallelism (<= 0 uses GOMAXPROCS). The
	// labeling is identical for every worker count.
	Workers int
	// Samples and Seed configure root selection exactly like IndexParams
	// (Samples only matters for ClosenessHubs; 0 picks a default).
	Samples int
	Seed    int64
}

// BuildHubLabels precomputes a pruned 2-hop hub labeling of g for the
// HubLabel engine: roots chosen by the strategy, a pruned Dijkstra per
// root, with label entries kept only where no earlier root already covers
// the pair. Attach the result to engines via Options.Labels (it is
// read-only after construction and safe to share across a whole Pool or
// Cluster):
//
//	labels, _ := rkranks.BuildHubLabels(g, rkranks.HubLabelParams{Strategy: rkranks.DegreeHubs})
//	pool := rkranks.NewPool(g, rkranks.Options{Labels: labels}, 0)
//	res, _ := pool.Query(rkranks.HubLabel, q, 10)
func BuildHubLabels(g *Graph, p HubLabelParams) (*HubLabels, error) {
	h := p.Count
	if h <= 0 || h > g.N() {
		h = g.N()
	}
	roots := hub.Order(g, p.Strategy, h, hub.Options{Samples: p.Samples, Seed: p.Seed, Workers: p.Workers})
	return hub.BuildLabels(g, roots, p.Workers)
}

// SaveHubLabels writes a hub labeling to a file in the versioned binary
// format rkserve and rkcluster load with -hub-load.
func SaveHubLabels(path string, l *HubLabels) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := l.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadHubLabels reads a labeling written by SaveHubLabels. The labeling
// records the graph's node count and direction; NewEngine rejects a
// mismatch against the graph it is attached to.
func LoadHubLabels(path string) (*HubLabels, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return hub.ReadLabels(f)
}

// ReadGraph loads a graph from a file (binary for the ".rkg" extension,
// text edge-list otherwise; see the graph package formats).
func ReadGraph(path string) (*Graph, error) { return graph.ReadFile(path) }

// WriteGraph stores a graph to a file, dispatching on the ".rkg" extension.
func WriteGraph(path string, g *Graph) error { return graph.WriteFile(path, g) }

// ReadGraphFrom parses the text edge-list format from r.
func ReadGraphFrom(r io.Reader) (*Graph, error) { return graph.ReadText(r) }

// IndexParams configures BuildIndex. Fractions follow the paper's h and m
// parameters (Table 5 defaults: h = m = 0.1, Degree First); the zero
// value picks exactly those defaults with MaxK = 100.
type IndexParams struct {
	// HubFraction is h = H/|V|, the fraction of nodes used as hubs
	// (0 defaults to 0.1).
	HubFraction float64
	// RankFraction is m = M/|V|, the fraction of nodes ranked per hub
	// (0 defaults to 0.1).
	RankFraction float64
	// MaxK is the largest query k the index will support (paper's K;
	// 0 defaults to 100).
	MaxK int
	// Strategy picks hubs; the zero value is RandomHubs, and the paper's
	// best performer is DegreeHubs.
	Strategy HubStrategy
	// Counted restricts rank counting for bichromatic indexes; nil counts
	// every node (monochromatic).
	Counted []bool
	// Candidates restricts which hubs may contribute entries (bichromatic
	// mode): only candidate-class nodes are eligible results, so only
	// they may occupy dictionary slots. Nil admits every hub.
	Candidates []bool
	// Seed drives hub sampling.
	Seed int64
}

// buildParams validates p and resolves it into ridx build parameters.
func buildParams(g *Graph, p IndexParams) (ridx.BuildParams, error) {
	if p.HubFraction == 0 {
		p.HubFraction = 0.1
	}
	if p.RankFraction == 0 {
		p.RankFraction = 0.1
	}
	if p.MaxK == 0 {
		p.MaxK = 100
	}
	if p.HubFraction < 0 || p.HubFraction > 1 {
		return ridx.BuildParams{}, optErr("IndexParams.HubFraction must be in (0,1], got %g", p.HubFraction)
	}
	if p.RankFraction < 0 || p.RankFraction > 1 {
		return ridx.BuildParams{}, optErr("IndexParams.RankFraction must be in (0,1], got %g", p.RankFraction)
	}
	if p.MaxK < 1 {
		return ridx.BuildParams{}, optErr("IndexParams.MaxK must be >= 1, got %d", p.MaxK)
	}
	h := int(float64(g.N()) * p.HubFraction)
	if h < 1 {
		h = 1
	}
	m := int(float64(g.N()) * p.RankFraction)
	if m < 1 {
		m = 1
	}
	hubs := hub.Select(g, p.Strategy, h, hub.Options{Seed: p.Seed})
	return ridx.BuildParams{
		Hubs: hubs, M: m, K: p.MaxK,
		Counted: p.Counted, Candidates: p.Candidates,
	}, nil
}

// BuildIndex precomputes a Section-5 index for g: selects H = h·|V| hubs
// with the chosen strategy and runs an M = m·|V| step ranked SSSP from
// each. Attach the result to an Engine with SetIndex to enable Indexed
// queries on that engine. The returned index is the single-goroutine
// implementation; use NewConcurrentIndex for one a Pool can share.
func BuildIndex(g *Graph, p IndexParams) (Index, error) {
	bp, err := buildParams(g, p)
	if err != nil {
		return nil, err
	}
	// Hub searches are independent; build in parallel. The result is
	// identical to a serial build regardless of scheduling.
	ix, err := ridx.BuildParallel(g, bp, 0)
	if err != nil {
		return nil, err
	}
	return ix, nil
}

// NewConcurrentIndex precomputes the same index as BuildIndex into the
// concurrency-safe lock-striped implementation: any number of engines may
// read and refine it at once, so it is the index to pass to
// NewPoolWithIndex. The build itself also runs hub searches on all cores,
// writing the shared dictionaries directly.
func NewConcurrentIndex(g *Graph, p IndexParams) (*ConcurrentIndex, error) {
	bp, err := buildParams(g, p)
	if err != nil {
		return nil, err
	}
	return ridx.BuildSharded(g, bp, 0)
}

// ReverseKRanks answers a single reverse k-ranks query with the Dynamic
// engine — the best index-free choice. For query streams, construct an
// Engine (and optionally an Index) once and reuse it.
func ReverseKRanks(g *Graph, q int32, k int) ([]Entry, error) {
	res, err := core.NewEngine(g, core.Options{}).Query(core.Dynamic, q, k)
	if err != nil {
		return nil, err
	}
	return res.Entries, nil
}

// PPRParams configures Personalized-PageRank proximity (see ReverseKRanksPPR).
type PPRParams = ppr.Params

// PersonalizedPageRank computes the PPR vector of source (power iteration,
// weight-proportional transitions, dangling mass teleports to the source).
func PersonalizedPageRank(g *Graph, source int32, p PPRParams) ([]float64, error) {
	return ppr.Scores(g, source, p)
}

// ReverseKRanksPPR answers a reverse k-ranks query under Personalized
// PageRank proximity instead of shortest-path distance — the extension the
// paper's conclusion lists as future work. This is a reference (brute
// force) implementation: PPR is not a metric, so none of the SDS-tree
// pruning bounds apply; cost is O(|V|) power iterations per query. Use it
// as an oracle or on small graphs.
func ReverseKRanksPPR(g *Graph, q int32, k int, p PPRParams) ([]Entry, error) {
	return ppr.ReverseKRanks(g, q, k, p)
}

// Rank computes Rank(src, dst): 1 plus the number of nodes strictly closer
// to src than dst is (Definition 1; equidistant nodes share a rank). It
// returns RankUnreachable when dst cannot be reached from src.
func Rank(g *Graph, src, dst int32) int32 {
	return rank.Of(sssp.New(g), src, dst)
}

// TopK returns q's k nearest nodes by shortest-path distance, nearest
// first (the classical k-NN query the paper contrasts with).
func TopK(g *Graph, q int32, k int) []Entry {
	res := topk.TopK(g, q, k)
	out := make([]Entry, len(res))
	for i, r := range res {
		out[i] = Entry{Node: r.Node, Rank: int32(i + 1)}
	}
	return out
}

// ReverseTopK returns every node that has q among its k nearest nodes
// (rank <= k), with exact ranks, ordered by (rank, node). Its result size
// is unbounded — the imbalance that motivates reverse k-ranks.
func ReverseTopK(g *Graph, q int32, k int) []Entry {
	return topk.ReverseTopK(g, q, k)
}

// ReverseTopKBichromatic is ReverseTopK under Definitions 3-4: results
// come from the candidate class and ranks count the counted class (nil
// slices admit all nodes). The paper's Figure-5 case study is a reverse
// top-1 query of this form.
func ReverseTopKBichromatic(g *Graph, q int32, k int, candidates, counted []bool) []Entry {
	return topk.ReverseTopKBichromatic(g, q, k, candidates, counted)
}

// Distance returns the shortest-path distance from src to dst; ok is false
// when dst is unreachable.
func Distance(g *Graph, src, dst int32) (float64, bool) {
	return sssp.Distance(sssp.New(g), src, dst)
}
