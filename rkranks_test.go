package rkranks_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"rkranks"
)

// toyGraph rebuilds the paper's Figure-1 example through the public API.
func toyGraph() (*rkranks.Graph, map[string]int32) {
	b := rkranks.NewBuilder(false)
	id := map[string]int32{}
	for _, n := range []string{"Alice", "Bob", "Caroline", "Sid", "Eric", "Frank", "George"} {
		id[n] = b.AddLabeledNode(n)
	}
	edges := []struct {
		u, v string
		w    float64
	}{
		{"Alice", "Bob", 1.0}, {"Bob", "Eric", 0.2}, {"Bob", "Caroline", 0.3},
		{"Caroline", "Sid", 1.2}, {"Eric", "Frank", 0.9}, {"Eric", "Sid", 1.0},
		{"Eric", "George", 1.1}, {"Frank", "George", 0.2},
	}
	for _, e := range edges {
		b.MustAddEdge(id[e.u], id[e.v], e.w)
	}
	return b.Finalize(), id
}

func TestPublicQuickstart(t *testing.T) {
	g, id := toyGraph()
	res, err := rkranks.ReverseKRanks(g, id["Alice"], 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || g.Label(res[0].Node) != "Bob" || g.Label(res[1].Node) != "Caroline" {
		t.Fatalf("reverse 2-ranks of Alice = %v", res)
	}
	if res[0].Rank != 3 || res[1].Rank != 4 {
		t.Fatalf("ranks = %v", res)
	}
}

func TestPublicAllAlgorithms(t *testing.T) {
	g, id := toyGraph()
	e := rkranks.NewEngine(g, rkranks.Options{})
	ix, err := rkranks.BuildIndex(g, rkranks.IndexParams{
		HubFraction: 0.5, RankFraction: 0.5, MaxK: 4, Strategy: rkranks.DegreeHubs,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetIndex(ix)
	for _, algo := range []rkranks.Algorithm{rkranks.Naive, rkranks.Static, rkranks.Dynamic, rkranks.Indexed} {
		res, err := e.Query(algo, id["Eric"], 2)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(res.Entries) != 2 || res.Entries[0].Rank != 1 || res.Entries[1].Rank != 1 {
			t.Errorf("%v: %v", algo, res.Entries)
		}
	}
}

func TestPublicRankDistanceTopK(t *testing.T) {
	g, id := toyGraph()
	if r := rkranks.Rank(g, id["Bob"], id["Alice"]); r != 3 {
		t.Errorf("Rank(Bob,Alice) = %d, want 3", r)
	}
	if d, ok := rkranks.Distance(g, id["Alice"], id["Eric"]); !ok || d != 1.2 {
		t.Errorf("Distance = %g/%v", d, ok)
	}
	top := rkranks.TopK(g, id["Alice"], 2)
	if len(top) != 2 || g.Label(top[0].Node) != "Bob" || top[0].Rank != 1 {
		t.Errorf("TopK = %v", top)
	}
	rtk := rkranks.ReverseTopK(g, id["Eric"], 2)
	if len(rtk) != 6 {
		t.Errorf("ReverseTopK size = %d, want 6", len(rtk))
	}
}

func TestPublicGraphIO(t *testing.T) {
	g, id := toyGraph()
	path := filepath.Join(t.TempDir(), "toy.rkg")
	if err := rkranks.WriteGraph(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := rkranks.ReadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || got.M() != g.M() {
		t.Fatalf("round trip shape: %d/%d", got.N(), got.M())
	}
	if back, ok := got.NodeByLabel("Eric"); !ok || back != id["Eric"] {
		t.Error("labels lost")
	}
	res, err := rkranks.ReverseKRanks(got, id["Alice"], 2)
	if err != nil || len(res) != 2 {
		t.Fatalf("query on reloaded graph: %v, %v", res, err)
	}
}

func TestBuildIndexValidation(t *testing.T) {
	g, _ := toyGraph()
	bad := []rkranks.IndexParams{
		{HubFraction: -0.1, RankFraction: 0.1, MaxK: 5},
		{HubFraction: 1.5, RankFraction: 0.1, MaxK: 5},
		{HubFraction: 0.1, RankFraction: -0.1, MaxK: 5},
		{HubFraction: 0.1, RankFraction: 0.1, MaxK: -1},
	}
	for i, p := range bad {
		_, err := rkranks.BuildIndex(g, p)
		if err == nil {
			t.Errorf("params %d accepted: %+v", i, p)
		} else if !errors.Is(err, rkranks.ErrInvalidOptions) {
			t.Errorf("params %d: error does not wrap ErrInvalidOptions: %v", i, err)
		}
	}
	// Zero fields mean "use the paper's defaults", not an error.
	if _, err := rkranks.BuildIndex(g, rkranks.IndexParams{}); err != nil {
		t.Errorf("zero IndexParams rejected: %v", err)
	}
}

func TestPublicBichromatic(t *testing.T) {
	// 5-node path; nodes 0 and 4 are "stores", the rest communities.
	b := rkranks.NewBuilder(false)
	for i := 0; i < 5; i++ {
		b.AddNode()
	}
	for i := 0; i < 4; i++ {
		b.MustAddEdge(int32(i), int32(i+1), 1)
	}
	g := b.Finalize()
	candidates := []bool{false, true, true, true, false}
	counted := []bool{true, false, false, false, true}
	e := rkranks.NewEngine(g, rkranks.Options{Candidates: candidates, Counted: counted})
	res, err := e.Query(rkranks.Dynamic, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Communities 1 and 2 rank store 0 first (closer than store 4).
	if len(res.Entries) != 2 {
		t.Fatalf("entries = %v", res.Entries)
	}
	for _, en := range res.Entries[:2] {
		if en.Node != 1 && en.Node != 2 {
			t.Errorf("unexpected community %d", en.Node)
		}
		if en.Rank != 1 {
			t.Errorf("rank = %d, want 1", en.Rank)
		}
	}
	// Querying a non-counted node must fail.
	if _, err := e.Query(rkranks.Dynamic, 2, 1); err == nil {
		t.Error("bichromatic query from candidate class accepted")
	}
}

func TestPublicPool(t *testing.T) {
	g, id := toyGraph()
	pool := rkranks.NewPool(g, rkranks.Options{}, 2)
	results, err := pool.QueryMany(rkranks.Dynamic, []int32{id["Alice"], id["Eric"]}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || len(results[0].Entries) != 2 || results[1].Entries[0].Rank != 1 {
		t.Fatalf("pool results: %v", results)
	}
}

func TestPublicConcurrentIndexPool(t *testing.T) {
	g, id := toyGraph()
	params := rkranks.IndexParams{
		HubFraction: 0.5, RankFraction: 0.5, MaxK: 4, Strategy: rkranks.DegreeHubs,
	}
	cix, err := rkranks.NewConcurrentIndex(g, params)
	if err != nil {
		t.Fatal(err)
	}
	if !cix.Concurrent() {
		t.Fatal("NewConcurrentIndex returned a non-concurrent index")
	}
	six, err := rkranks.BuildIndex(g, params)
	if err != nil {
		t.Fatal(err)
	}
	if six.Concurrent() {
		t.Fatal("BuildIndex returned a concurrent index")
	}
	if _, err := rkranks.NewPoolWithIndex(g, rkranks.Options{}, 4, six); err == nil {
		t.Fatal("pool accepted a non-concurrent index")
	}
	pool, err := rkranks.NewPoolWithIndex(g, rkranks.Options{}, 4, cix)
	if err != nil {
		t.Fatal(err)
	}

	// Serial oracle: a dedicated engine on its own index copy.
	oracle := rkranks.NewEngine(g, rkranks.Options{})
	oracle.SetIndex(six)
	queries := make([]int32, 0, len(id))
	for _, q := range id {
		queries = append(queries, q)
	}
	want := map[int32]string{}
	for _, q := range queries {
		res, err := oracle.Query(rkranks.Indexed, q, 3)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = fmt.Sprint(res.Entries)
	}
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for _, q := range queries {
			wg.Add(1)
			go func(q int32) {
				defer wg.Done()
				res, err := pool.Query(rkranks.Indexed, q, 3)
				if err != nil {
					t.Error(err)
					return
				}
				if got := fmt.Sprint(res.Entries); got != want[q] {
					t.Errorf("q=%d: %s != %s", q, got, want[q])
				}
			}(q)
		}
	}
	wg.Wait()
	results, err := pool.QueryMany(rkranks.Indexed, queries, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if got := fmt.Sprint(res.Entries); got != want[queries[i]] {
			t.Errorf("QueryMany q=%d: %s != %s", queries[i], got, want[queries[i]])
		}
	}
}

func TestConcurrentIndexSaveLoad(t *testing.T) {
	g, id := toyGraph()
	cix, err := rkranks.NewConcurrentIndex(g, rkranks.IndexParams{
		HubFraction: 0.5, RankFraction: 0.5, MaxK: 4, Strategy: rkranks.DegreeHubs,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "toy.rki")
	if err := rkranks.SaveIndex(path, cix); err != nil {
		t.Fatal(err)
	}
	back, err := rkranks.LoadConcurrentIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Concurrent() || back.Entries() != cix.Entries() {
		t.Fatalf("reloaded concurrent index: concurrent=%v entries=%d want %d",
			back.Concurrent(), back.Entries(), cix.Entries())
	}
	pool, err := rkranks.NewPoolWithIndex(g, rkranks.Options{}, 2, back)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pool.Query(rkranks.Indexed, id["Alice"], 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 2 || res.Entries[0].Rank != 3 {
		t.Fatalf("query via reloaded concurrent index: %v", res.Entries)
	}
	// The same file loads as a serial index too: one on-disk format.
	serial, err := rkranks.LoadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Concurrent() || serial.Entries() != cix.Entries() {
		t.Fatalf("serial reload: concurrent=%v entries=%d", serial.Concurrent(), serial.Entries())
	}
	if _, err := rkranks.LoadConcurrentIndex(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing index accepted")
	}
}

func TestIndexSaveLoad(t *testing.T) {
	g, id := toyGraph()
	ix, err := rkranks.BuildIndex(g, rkranks.IndexParams{
		HubFraction: 0.5, RankFraction: 0.5, MaxK: 4, Strategy: rkranks.DegreeHubs,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "toy.rki")
	if err := rkranks.SaveIndex(path, ix); err != nil {
		t.Fatal(err)
	}
	back, err := rkranks.LoadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	e := rkranks.NewEngine(g, rkranks.Options{})
	e.SetIndex(back)
	res, err := e.Query(rkranks.Indexed, id["Alice"], 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 2 || res.Entries[0].Rank != 3 {
		t.Fatalf("query via reloaded index: %v", res.Entries)
	}
	if _, err := rkranks.LoadIndex(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing index accepted")
	}
}

func TestDistanceCutoffAblationSameResults(t *testing.T) {
	g, id := toyGraph()
	plain := rkranks.NewEngine(g, rkranks.Options{})
	ablate := rkranks.NewEngine(g, rkranks.Options{DisableDistanceCutoff: true})
	for _, q := range id {
		a, err := plain.Query(rkranks.Dynamic, q, 3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ablate.Query(rkranks.Dynamic, q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Entries) != len(b.Entries) {
			t.Fatalf("cutoff changed result size for q=%d", q)
		}
		for i := range a.Entries {
			if a.Entries[i] != b.Entries[i] {
				t.Fatalf("cutoff changed results for q=%d: %v vs %v", q, a.Entries, b.Entries)
			}
		}
	}
}

func TestPublicPPR(t *testing.T) {
	g, id := toyGraph()
	p := rkranks.PPRParams{Alpha: 0.15}
	scores, err := rkranks.PersonalizedPageRank(g, id["Alice"], p)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range scores {
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("PPR sums to %g", sum)
	}
	res, err := rkranks.ReverseKRanksPPR(g, id["Alice"], 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("PPR reverse 2-ranks = %v", res)
	}
	// Bob, Alice's only neighbor, must rank her highest of anyone.
	if res[0].Node != id["Bob"] {
		t.Errorf("PPR top result = %v, want Bob", res[0])
	}
	if _, err := rkranks.ReverseKRanksPPR(g, id["Alice"], 2, rkranks.PPRParams{Alpha: 2}); err == nil {
		t.Error("bad alpha accepted")
	}
}

func TestPublicReverseTopKBichromatic(t *testing.T) {
	// Path 0-1-2-3-4 with stores at the ends.
	b := rkranks.NewBuilder(false)
	for i := 0; i < 5; i++ {
		b.AddNode()
	}
	for i := 0; i < 4; i++ {
		b.MustAddEdge(int32(i), int32(i+1), 1)
	}
	g := b.Finalize()
	candidates := []bool{false, true, true, true, false}
	counted := []bool{true, false, false, false, true}
	res := rkranks.ReverseTopKBichromatic(g, 0, 1, candidates, counted)
	// Communities 1 and 2 are nearer to store 0 than to store 4 (node 2
	// ties at distance 2 from both, so both stores rank 1 from it).
	if len(res) != 2 {
		t.Fatalf("reverse top-1 of store 0 = %v", res)
	}
	for _, e := range res {
		if e.Node != 1 && e.Node != 2 {
			t.Errorf("unexpected community %d", e.Node)
		}
	}
}

func TestRankUnreachableConstant(t *testing.T) {
	b := rkranks.NewBuilder(true)
	b.AddNode()
	b.AddNode()
	b.MustAddEdge(0, 1, 1)
	g := b.Finalize()
	if r := rkranks.Rank(g, 1, 0); r != rkranks.RankUnreachable {
		t.Errorf("Rank = %d, want RankUnreachable", r)
	}
}

// TestPublicCluster covers NewCluster: a 4-shard in-process cluster must
// answer byte-identically to a single engine, flag nothing partial, and
// serve Indexed queries when given a shared concurrent index.
func TestPublicCluster(t *testing.T) {
	g, id := toyGraph()
	cl, err := rkranks.NewCluster(g, rkranks.Options{}, rkranks.ClusterOptions{
		Shards: 4, Partitioner: "degree",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.Query(rkranks.Dynamic, id["Alice"], 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rkranks.ReverseKRanks(g, id["Alice"], 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != len(want) || res.Partial {
		t.Fatalf("cluster result %+v, want %v", res, want)
	}
	for i := range want {
		if res.Entries[i] != want[i] {
			t.Fatalf("cluster diverged: %v vs %v", res.Entries, want)
		}
	}
	if f := res.Floor(); f.Exhausted || f.Rank != 4 {
		t.Errorf("floor = %+v, want witness rank 4", f)
	}

	ix, err := rkranks.NewConcurrentIndex(g, rkranks.IndexParams{
		HubFraction: 0.5, RankFraction: 0.5, MaxK: 10, Strategy: rkranks.DegreeHubs,
	})
	if err != nil {
		t.Fatal(err)
	}
	icl, err := rkranks.NewCluster(g, rkranks.Options{}, rkranks.ClusterOptions{Shards: 2, Index: ix})
	if err != nil {
		t.Fatal(err)
	}
	defer icl.Close()
	ires, err := icl.Query(rkranks.Indexed, id["Alice"], 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if ires.Entries[i] != want[i] {
			t.Fatalf("indexed cluster diverged: %v vs %v", ires.Entries, want)
		}
	}

	if _, err := rkranks.NewCluster(g, rkranks.Options{}, rkranks.ClusterOptions{Shards: -1}); !errors.Is(err, rkranks.ErrInvalidOptions) {
		t.Errorf("Shards: -1: %v", err)
	}
	if _, err := rkranks.NewCluster(g, rkranks.Options{}, rkranks.ClusterOptions{Shards: 2, Partitioner: "nope"}); !errors.Is(err, rkranks.ErrInvalidOptions) {
		t.Errorf("unknown partitioner: %v", err)
	}
	// Shards: 0 defaults to a single shard.
	single, err := rkranks.NewCluster(g, rkranks.Options{}, rkranks.ClusterOptions{})
	if err != nil {
		t.Fatalf("zero ClusterOptions rejected: %v", err)
	}
	single.Close()
}

// TestPublicCachedBackend: the cache decorator wraps both a Pool and a
// Cluster through the public API, answers byte-identically on repeats,
// and reports its counters.
func TestPublicCachedBackend(t *testing.T) {
	g, id := toyGraph()
	pool := rkranks.NewPool(g, rkranks.Options{}, 2)
	cached, err := rkranks.NewCachedBackend(pool, rkranks.CacheOptions{MaxMB: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := id["Alice"]
	first, err := cached.QueryContext(context.Background(), rkranks.Dynamic, q, 2)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cached.QueryContext(context.Background(), rkranks.Dynamic, q, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first.Entries {
		if first.Entries[i] != second.Entries[i] {
			t.Fatalf("cached repeat diverged: %v vs %v", first.Entries, second.Entries)
		}
	}
	snap := cached.Cache().Stats()
	if snap.Hits != 1 || snap.Misses != 1 {
		t.Errorf("cache stats = %+v, want one miss then one hit", snap)
	}

	cl, err := rkranks.NewCluster(g, rkranks.Options{}, rkranks.ClusterOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cachedCluster, err := rkranks.NewCachedBackend(cl, rkranks.CacheOptions{MaxMB: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cachedCluster.QueryContext(context.Background(), rkranks.Dynamic, q, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first.Entries {
		if res.Entries[i] != first.Entries[i] {
			t.Fatalf("cached cluster diverged from pool: %v vs %v", res.Entries, first.Entries)
		}
	}

	if _, err := rkranks.NewCachedBackend(pool, rkranks.CacheOptions{MaxMB: -1}); !errors.Is(err, rkranks.ErrInvalidOptions) {
		t.Errorf("MaxMB: -1: %v", err)
	}
	// MaxMB: 0 means the 64 MiB default.
	if _, err := rkranks.NewCachedBackend(pool, rkranks.CacheOptions{}); err != nil {
		t.Errorf("zero CacheOptions rejected: %v", err)
	}
}

// TestPublicReplicatedCluster: ClusterOptions.Replicas runs each shard
// as a replica set with byte-identical answers, the topology helpers
// round-trip and reject through ErrInvalidOptions, and a
// ReplicatedIndex drops in wherever an Index is accepted.
func TestPublicReplicatedCluster(t *testing.T) {
	g, id := toyGraph()
	cl, err := rkranks.NewCluster(g, rkranks.Options{}, rkranks.ClusterOptions{Shards: 2, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	want, err := rkranks.ReverseKRanks(g, id["Alice"], 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Query(rkranks.Dynamic, id["Alice"], 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || len(res.Entries) != len(want) {
		t.Fatalf("replicated cluster degraded: %+v", res)
	}
	for i := range want {
		if res.Entries[i] != want[i] {
			t.Fatalf("replicated cluster diverged: %v vs %v", res.Entries, want)
		}
	}

	if _, err := rkranks.NewCluster(g, rkranks.Options{}, rkranks.ClusterOptions{Replicas: -1}); !errors.Is(err, rkranks.ErrInvalidOptions) {
		t.Errorf("Replicas: -1: %v", err)
	}

	topo, err := rkranks.ReadTopology(strings.NewReader(`{"local": {"shards": 2, "replicas": 2}}`))
	if err != nil {
		t.Fatal(err)
	}
	if topo.Local.ShardCount() != 2 || topo.Local.ReplicaCount() != 2 {
		t.Errorf("topology counts = %d/%d, want 2/2", topo.Local.ShardCount(), topo.Local.ReplicaCount())
	}
	if _, err := rkranks.ReadTopology(strings.NewReader(`{"sharts": 2}`)); !errors.Is(err, rkranks.ErrInvalidOptions) {
		t.Errorf("unknown topology field: %v", err)
	}
	bad := &rkranks.Topology{Local: &rkranks.LocalTopology{Shards: 1}, Shards: []rkranks.TopologyShard{{Replicas: []string{"http://a"}}}}
	if err := rkranks.ValidateTopology(bad); !errors.Is(err, rkranks.ErrInvalidOptions) {
		t.Errorf("local+shards topology: %v", err)
	}

	ix, err := rkranks.NewConcurrentIndex(g, rkranks.IndexParams{
		HubFraction: 0.5, RankFraction: 0.5, MaxK: 10, Strategy: rkranks.DegreeHubs,
	})
	if err != nil {
		t.Fatal(err)
	}
	ricl, err := rkranks.NewCluster(g, rkranks.Options{}, rkranks.ClusterOptions{
		Shards: 2, Replicas: 2, Index: rkranks.NewReplicatedIndex(ix),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ricl.Close()
	ires, err := ricl.Query(rkranks.Indexed, id["Alice"], 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if ires.Entries[i] != want[i] {
			t.Fatalf("replicated indexed cluster diverged: %v vs %v", ires.Entries, want)
		}
	}
}
