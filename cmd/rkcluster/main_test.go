package main

import (
	"context"
	"log/slog"
	"syscall"
	"testing"
	"time"

	"rkranks/internal/server"
)

// TestClusterServeAndSigtermDrain boots the real binary path (run) with a
// 2-shard in-process cluster, exercises the serving surface, and asserts
// the SIGTERM drain contract.
func TestClusterServeAndSigtermDrain(t *testing.T) {
	logger := slog.New(slog.DiscardHandler)
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-gen", "dblp", "-gen-nodes", "1500",
			"-shards", "2", "-partitioner", "degree",
			"-pool", "1", "-access-log=false",
		}, logger, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("cluster exited early: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("cluster never became ready")
	}
	c := server.NewClient("http://" + addr)

	doc, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("healthz: %v (%v)", err, doc)
	}
	if doc["shards"] != float64(2) {
		t.Errorf("healthz shards = %v, want 2", doc["shards"])
	}

	resp, err := c.Query(context.Background(), "dynamic", 7, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Entries) != 10 || resp.Partial {
		t.Errorf("query response: %+v", resp)
	}
	batch, err := c.Batch(context.Background(), "dynamic", []int32{1, 2, 3}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 3 {
		t.Errorf("batch returned %d results", len(batch.Results))
	}

	snap, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cl, ok := snap.Cluster.(map[string]any)
	if !ok {
		t.Fatalf("statsz cluster section = %#v", snap.Cluster)
	}
	if shardsDoc, ok := cl["shards"].([]any); !ok || len(shardsDoc) != 2 {
		t.Errorf("cluster shards section = %v", cl["shards"])
	}

	// SIGTERM: run must drain and return nil.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("cluster never drained after SIGTERM")
	}
}
