// Command rkcluster serves reverse k-ranks queries from a sharded
// cluster: a scatter-gather coordinator (internal/cluster) behind the
// same HTTP contract as rkserve — POST /v1/query, POST /v1/batch,
// GET /healthz, GET /statsz — so clients and load balancers cannot tell
// one node from P.
//
// The cluster layout comes from ONE declarative topology file:
//
//	rkcluster -graph g.rkg -topology topo.json
//
// where topo.json names either in-process shards or remote replica sets
// (see the README's "Replication & failover" for the full format):
//
//	{"shards": [
//	  {"replicas": ["http://s0a:8080", "http://s0b:8080"]},
//	  {"replicas": ["http://s1a:8080", "http://s1b:8080"]}
//	]}
//
// Every URL in shard i's replica list must serve the SAME graph, booted
// as `rkserve -shard i/P -shard-partitioner <name>` with P the shard
// count; rkcluster dials each /healthz at startup and refuses
// mismatched node counts. Replicas of one shard are interchangeable:
// queries load-balance across the healthy ones and fail over without
// changing a byte of any answer; mutations fan to all of them in
// lockstep.
//
// The pre-topology flags still work as a deprecated shim — each maps to
// one topology field and may not be combined with -topology:
//
//	rkcluster -graph g.rkg -shards 4                         # {"local": {"shards": 4}}
//	rkcluster -graph g.rkg -backends http://s0:8080,http://s1:8080
//	                                                         # one single-replica shard per URL
//
// Queries fan out to all shards at a reduced first-round k; shards whose
// certified rank floor clears the merged cutoff are short-circuited and
// only the rest are re-fetched at full k, so results are byte-identical
// to a single node while transferring far fewer entries (see
// internal/cluster). /statsz gains a "cluster" section with per-shard
// occupancy, health, and the coordinator-vs-slowest-shard latency split.
//
// On SIGTERM/SIGINT the coordinator drains like rkserve: admission stops
// (503), in-flight scatters complete, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rkranks/internal/api"
	"rkranks/internal/cache"
	"rkranks/internal/cluster"
	"rkranks/internal/core"
	"rkranks/internal/gen"
	"rkranks/internal/graph"
	"rkranks/internal/hub"
	"rkranks/internal/live"
	"rkranks/internal/obs"
	"rkranks/internal/ridx"
	"rkranks/internal/server"
)

func main() {
	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	if err := run(os.Args[1:], logger, nil); err != nil {
		logger.Error("fatal", slog.String("err", err.Error()))
		os.Exit(1)
	}
}

// run boots the cluster front and blocks until shutdown. ready, if
// non-nil, receives the bound address once the listener is up.
func run(args []string, logger *slog.Logger, ready chan<- string) error {
	fs := flag.NewFlagSet("rkcluster", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		graphPath = fs.String("graph", "", "graph file (.rkg binary or text edge list)")
		genType   = fs.String("gen", "", "serve a synthetic graph instead of -graph: dblp|epinions|road|gnm")
		genNodes  = fs.Int("gen-nodes", 5000, "node count for -gen")
		genSeed   = fs.Int64("gen-seed", 1, "seed for -gen")

		topoPath    = fs.String("topology", "", "declarative cluster topology file (JSON; shard masks, per-shard replica lists, coordinator options)")
		shards      = fs.Int("shards", 2, "in-process shard count (deprecated: use -topology with a \"local\" section)")
		partName    = fs.String("partitioner", "modulo", "vertex partitioner: modulo|degree")
		backendList = fs.String("backends", "", "comma-separated rkserve shard URLs, one single-replica shard each (deprecated: use -topology with a \"shards\" list)")
		replicas    = fs.Int("replicas", 1, "in-process replicas per shard (deprecated: use -topology)")

		buildIndex = fs.Bool("build-index", false, "build one shared concurrent index for the in-process shards")
		hubFrac    = fs.Float64("index-h", 0.1, "hub fraction h for -build-index")
		rankFrac   = fs.Float64("index-m", 0.1, "ranked fraction m for -build-index")
		indexK     = fs.Int("index-k", 100, "max supported k for -build-index")

		hubLoad     = fs.String("hub-load", "", "prebuilt hub labeling file shared by the in-process shards (rkranks.SaveHubLabels format); enables the hublabel algorithm")
		hubCount    = fs.Int("hub-count", 0, "build one shared hub labeling with this many roots at startup (-1 = all nodes)")
		hubStrategy = fs.String("hub-strategy", "degree", "root-selection strategy for -hub-count: random|degree|closeness")
		hubWorkers  = fs.Int("hub-workers", 0, "build parallelism for -hub-count (0 = GOMAXPROCS; the labeling is identical for any value)")

		cacheMB     = fs.Int("cache-mb", 0, "response cache budget in MiB (0 disables); duplicate in-flight queries coalesce onto one scatter")
		poolSize    = fs.Int("pool", 0, "engine pool size PER SHARD (0 = GOMAXPROCS-derived)")
		refine      = fs.Int("refine-workers", 0, "intra-query refine workers per engine")
		algo        = fs.String("algo", "", "default algorithm (empty = indexed when every shard has an index, else dynamic)")
		strict      = fs.Bool("strict", false, "refuse queries (503) when any shard is unavailable instead of answering partially")
		firstRoundK = fs.Int("first-round-k", 0, "first scatter round's per-shard k (0 = auto ceil(k/P)+2; >= k disables rank-floor pruning)")

		inflight  = fs.Int("max-inflight", 0, "max requests served concurrently (0 = 2x bottleneck shard capacity)")
		queue     = fs.Int("max-queue", 0, "max requests waiting for a slot (0 = 4x max-inflight)")
		timeout   = fs.Duration("timeout", 10*time.Second, "default per-request deadline")
		maxTO     = fs.Duration("max-timeout", 60*time.Second, "cap on client-requested deadlines")
		drainTO   = fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
		accessLog = fs.Bool("access-log", true, "emit structured access logs")
		pprofOn   = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (see CONTRIBUTING.md)")
		metricsOn = fs.Bool("metrics", true, "mount GET /metrics (Prometheus text exposition)")
		slowMS    = fs.Int("slow-query-ms", 500, "flight-recorder slow threshold in ms; 0 records EVERY request to /debug/requestz")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	topo, err := resolveTopology(fs, *topoPath, *shards, *replicas, *backendList, *partName, *strict, *firstRoundK, *cacheMB, *poolSize)
	if err != nil {
		return err
	}

	g, err := loadGraph(*graphPath, *genType, *genNodes, *genSeed)
	if err != nil {
		return err
	}
	logger.Info("graph loaded", slog.Int("nodes", g.N()), slog.Int64("edges", g.M()), slog.Bool("directed", g.Directed()))

	// One registry-backed catalog for the whole process: coordinator,
	// response cache, and server all record into it, so /metrics carries
	// the scatter-gather counters next to the HTTP surface.
	om := obs.NewMetrics(obs.NewRegistry())

	cfg := cluster.Config{StrictConsistency: topo.StrictConsistency, FirstRoundK: topo.FirstRoundK, Metrics: om}
	labels, err := resolveLabels(g, topo, *hubLoad, *hubCount, *hubStrategy, *hubWorkers, *genSeed, logger)
	if err != nil {
		return err
	}
	coord, err := buildCoordinator(g, topo, *refine,
		*buildIndex, *hubFrac, *rankFrac, *indexK, *genSeed, labels, cfg, logger)
	if err != nil {
		return err
	}
	defer coord.Close()
	logger.Info("coordinator ready",
		slog.Int("shards", coord.ShardCount()),
		slog.Int("capacity", coord.Size()),
		slog.Bool("indexed", coord.Indexed()),
		slog.Bool("hub_labeled", coord.HubLabeled()),
		slog.Bool("strict", topo.StrictConsistency))

	var backend server.Backend = coord
	if topo.CacheMB > 0 {
		cached, err := cache.NewBackend(coord, cache.Config{MaxBytes: int64(topo.CacheMB) << 20, Metrics: om})
		if err != nil {
			return err
		}
		backend = cached
		logger.Info("response cache enabled", slog.Int("budget_mb", topo.CacheMB))
	}

	scfg := server.Config{
		Backend:          backend,
		Graph:            g,
		DefaultAlgorithm: *algo,
		MaxInFlight:      *inflight,
		MaxQueue:         *queue,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTO,
		EnablePprof:      *pprofOn,
		Metrics:          om,
		EnableMetrics:    *metricsOn,
	}
	if *slowMS == 0 {
		scfg.SlowQueryThreshold = -1 // record every request
	} else {
		scfg.SlowQueryThreshold = time.Duration(*slowMS) * time.Millisecond
	}
	if *accessLog {
		scfg.AccessLog = logger
	}
	srv, err := server.New(scfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	logger.Info("serving", slog.String("addr", ln.Addr().String()))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second SIGTERM kills hard

	logger.Info("draining", slog.Duration("timeout", *drainTO))
	dctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		logger.Error("drain incomplete", slog.String("err", err.Error()))
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	logger.Info("drained, exiting")
	return nil
}

// resolveTopology produces the ONE topology the rest of the boot reads:
// the -topology file when given, otherwise the deprecated flat flags
// compiled into an equivalent Topology. Combining -topology with a flag
// it replaces is refused rather than silently resolved.
func resolveTopology(fs *flag.FlagSet, path string, shards, replicas int, backendList, partName string, strict bool, firstRoundK, cacheMB, poolSize int) (*api.Topology, error) {
	if path != "" {
		shadowed := map[string]bool{
			"shards": true, "replicas": true, "backends": true, "partitioner": true,
			"strict": true, "first-round-k": true, "cache-mb": true, "pool": true,
		}
		var conflict []string
		fs.Visit(func(f *flag.Flag) {
			if shadowed[f.Name] {
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			return nil, fmt.Errorf("rkcluster: %s conflict with -topology; set the equivalent topology fields instead", strings.Join(conflict, ", "))
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		t, err := api.ReadTopology(f)
		if err != nil {
			return nil, fmt.Errorf("rkcluster: topology %s: %w", path, err)
		}
		return t, nil
	}
	t := &api.Topology{
		Partitioner:       partName,
		StrictConsistency: strict,
		FirstRoundK:       firstRoundK,
		CacheMB:           cacheMB,
	}
	if backendList != "" {
		for _, url := range strings.Split(backendList, ",") {
			t.Shards = append(t.Shards, api.TopologyShard{Replicas: []string{strings.TrimSpace(url)}})
		}
	} else {
		t.Local = &api.LocalTopology{Shards: shards, Replicas: replicas, PoolSize: poolSize}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("rkcluster: %w", err)
	}
	return t, nil
}

// resolveLabels resolves the hub-labeling flags to ONE shared read-only
// labeling for the in-process shards (nil without one). Remote backends
// own their labelings — they are booted with their own -hub-* flags — so
// the flags are refused in remote mode rather than silently ignored.
func resolveLabels(g *graph.Graph, topo *api.Topology, path string, count int, strategy string, workers int, seed int64, logger *slog.Logger) (*hub.Labels, error) {
	if path == "" && count == 0 {
		return nil, nil
	}
	if len(topo.Shards) > 0 {
		return nil, fmt.Errorf("rkcluster: -hub-load/-hub-count apply to in-process shards; boot remote backends with their own rkserve -hub-* flags")
	}
	if path != "" && count != 0 {
		return nil, fmt.Errorf("rkcluster: -hub-load and -hub-count are mutually exclusive")
	}
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		labels, err := hub.ReadLabels(f)
		if err != nil {
			return nil, err
		}
		if labels.N() != g.N() || labels.Directed() != g.Directed() {
			return nil, fmt.Errorf("rkcluster: labeling %s covers %d nodes (directed=%v), graph has %d (directed=%v)",
				path, labels.N(), labels.Directed(), g.N(), g.Directed())
		}
		logger.Info("hub labeling loaded", slog.String("path", path),
			slog.Int("hubs", labels.HubCount()), slog.Int64("bytes", labels.Bytes()))
		return labels, nil
	}
	h := count
	if h < 0 || h > g.N() {
		h = g.N()
	}
	strat, err := hub.ParseStrategy(strategy)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	roots := hub.Order(g, strat, h, hub.Options{Seed: seed, Workers: workers})
	labels, err := hub.BuildLabels(g, roots, workers)
	if err != nil {
		return nil, err
	}
	logger.Info("shared hub labeling built", slog.Int("hubs", h),
		slog.String("strategy", strat.String()), slog.Int64("bytes", labels.Bytes()),
		slog.Duration("elapsed", time.Since(start)))
	return labels, nil
}

// buildCoordinator assembles the shard backends the topology declares:
// remote rkserve replica sets when it lists shards, masked in-process
// pools (optionally replicated) otherwise.
func buildCoordinator(g *graph.Graph, topo *api.Topology,
	refine int, buildIndex bool, h, m float64, k int, seed int64,
	labels *hub.Labels, cfg cluster.Config, logger *slog.Logger) (*cluster.Coordinator, error) {
	opts := core.Options{RefineWorkers: refine, Labels: labels}
	if P := len(topo.Shards); P > 0 {
		partName := topo.Partitioner
		if partName == "" {
			partName = "modulo"
		}
		backends := make([]cluster.ShardBackend, 0, P)
		for i, ts := range topo.Shards {
			expect := cluster.RemoteExpect{Nodes: g.N()}
			if P > 1 {
				// Merging assumes disjoint shard ownership: every replica
				// of entry i must have been booted as shard i of P with
				// the coordinator's partitioner. A single shard may serve
				// anything (degenerate one-shard cluster).
				expect.Shard = fmt.Sprintf("%d/%d", i, P)
				expect.Partitioner = partName
			}
			members := make([]cluster.ShardBackend, 0, len(ts.Replicas))
			for _, url := range ts.Replicas {
				// Bounded dial: a backend that TCP-accepts but never
				// answers must fail startup loudly, not hang it forever.
				dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				rs, err := cluster.NewRemoteShard(dctx, url, expect)
				cancel()
				if err != nil {
					return nil, err
				}
				logger.Info("replica attached", slog.Int("shard", i), slog.String("url", url),
					slog.Int("capacity", rs.Size()), slog.Bool("indexed", rs.Indexed()))
				members = append(members, rs)
			}
			if len(members) == 1 {
				backends = append(backends, members[0])
				continue
			}
			rg, err := cluster.NewReplicaGroup(members, cfg)
			if err != nil {
				return nil, err
			}
			logger.Info("replica set ready", slog.Int("shard", i), slog.Int("replicas", len(members)))
			backends = append(backends, rg)
		}
		return cluster.New(backends, cfg)
	}

	l := topo.Local
	if l == nil {
		l = &api.LocalTopology{}
	}
	shards, replicas := l.ShardCount(), l.ReplicaCount()
	part, err := cluster.ParsePartitioner(topo.Partitioner)
	if err != nil {
		return nil, err
	}
	if l.Live {
		indexMaxK := 0
		if buildIndex {
			// Live shards each start their OWN empty index at this MaxK
			// (rebuild swaps preclude sharing one; see ClusterOptions.Index).
			indexMaxK = k
		}
		return cluster.NewLocalLiveReplicated(g, live.Config{Options: opts, PoolSize: l.PoolSize}, indexMaxK, part, shards, replicas, cfg)
	}
	var ix ridx.Index
	if buildIndex {
		hn := max(1, int(float64(g.N())*h))
		mn := max(1, int(float64(g.N())*m))
		start := time.Now()
		hubs := hub.Select(g, hub.DegreeFirst, hn, hub.Options{Seed: seed})
		sh, err := ridx.BuildSharded(g, ridx.BuildParams{Hubs: hubs, M: mn, K: k}, 0)
		if err != nil {
			return nil, err
		}
		ix = sh
		logger.Info("shared index built", slog.Int("hubs", hn), slog.Int("m", mn),
			slog.Int("max_k", k), slog.Duration("elapsed", time.Since(start)))
	}
	return cluster.NewLocalReplicated(g, opts, part, shards, replicas, l.PoolSize, ix, cfg)
}

// loadGraph resolves -graph/-gen. The -gen parameters are shared with
// rkserve through gen.Named: cluster shards and their coordinator must
// build bit-identical graphs.
func loadGraph(path, genType string, nodes int, seed int64) (*graph.Graph, error) {
	switch {
	case path != "" && genType != "":
		return nil, fmt.Errorf("rkcluster: -graph and -gen are mutually exclusive")
	case path != "":
		return graph.ReadFile(path)
	case genType == "":
		return nil, fmt.Errorf("rkcluster: one of -graph or -gen is required")
	}
	return gen.Named(genType, nodes, seed)
}
