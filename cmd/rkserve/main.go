// Command rkserve serves reverse k-ranks queries over HTTP: the production
// front of the repository, wrapping a core.Pool (and, by default, one
// shared concurrent index that learns from all traffic) in the admission,
// deadline, observability, and drain machinery of internal/server.
//
// Usage:
//
//	rkserve -graph sf.rkg -addr :8080
//	rkserve -graph dblp.rkg -build-index -index-k 100       # index, then serve Indexed
//	rkserve -gen dblp -gen-nodes 5000 -addr :8080           # synthetic graph (demos, smoke tests)
//	rkserve -graph g.rkg -index g.ridx                      # serve a prebuilt index
//	rkserve -graph g.rkg -cache-mb 64                       # response cache + singleflight coalescing
//	rkserve -graph g.rkg -hub-count -1 -hub-save g.rkhl     # build a complete hub labeling, save, serve hublabel
//	rkserve -graph g.rkg -hub-load g.rkhl                   # serve hublabel from a prebuilt labeling
//	rkserve -graph g.rkg -shard 0/4                         # serve vertex shard 0 of 4 (see cmd/rkcluster)
//	rkserve -graph g.rkg -live                              # mutable graph: POST /v1/mutate applies live batches
//	rkserve -graph g.rkg -index-follow http://leader:8080   # replica: inherit the leader's learned index
//
// With -shard i/P the instance answers queries for its own vertex shard
// only (an internal/cluster partitioner mask over the candidate class);
// a cmd/rkcluster coordinator pointed at all P instances then serves the
// whole graph. Every shard must load the SAME graph and agree on
// (-shard-partitioner, P). A shard may be a replica SET: point several
// identical instances at the same shard spec and list them together in
// the coordinator's topology file. With -index-follow a replica
// cold-starts its dynamic index from a leader's snapshot and keeps
// absorbing the leader's refinement deltas instead of re-deriving the
// learned state from its own traffic.
//
// Endpoints: POST /v1/query, POST /v1/batch, POST /v1/mutate (with
// -live), GET /v1/index/snapshot, GET /v1/index/deltas, GET /healthz,
// GET /statsz (see internal/server). On SIGTERM/SIGINT the server drains: admission
// stops (503), every in-flight request completes, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rkranks/internal/api"
	"rkranks/internal/cache"
	"rkranks/internal/cluster"
	"rkranks/internal/core"
	"rkranks/internal/gen"
	"rkranks/internal/graph"
	"rkranks/internal/hub"
	"rkranks/internal/live"
	"rkranks/internal/obs"
	"rkranks/internal/ridx"
	"rkranks/internal/server"
)

func main() {
	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	if err := run(os.Args[1:], logger, nil); err != nil {
		logger.Error("fatal", slog.String("err", err.Error()))
		os.Exit(1)
	}
}

// run boots the server and blocks until shutdown. ready, if non-nil,
// receives the bound address once the listener is up (used by tests and
// scripts that pick port 0).
func run(args []string, logger *slog.Logger, ready chan<- string) error {
	fs := flag.NewFlagSet("rkserve", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		graphPath = fs.String("graph", "", "graph file (.rkg binary or text edge list)")
		genType   = fs.String("gen", "", "serve a synthetic graph instead of -graph: dblp|epinions|road|gnm")
		genNodes  = fs.Int("gen-nodes", 5000, "node count for -gen")
		genSeed   = fs.Int64("gen-seed", 1, "seed for -gen")

		indexPath   = fs.String("index", "", "prebuilt index file (rkranks.SaveIndex format)")
		buildIndex  = fs.Bool("build-index", false, "build a concurrent index at startup")
		hubFrac     = fs.Float64("index-h", 0.1, "hub fraction h for -build-index")
		rankFrac    = fs.Float64("index-m", 0.1, "ranked fraction m for -build-index")
		indexK      = fs.Int("index-k", 100, "max supported k for -build-index")
		indexFollow = fs.String("index-follow", "", "bootstrap the index from this rkserve leader's /v1/index/snapshot and keep absorbing its deltas (replica cold start; excludes -index/-build-index/-live)")
		indexSync   = fs.Duration("index-sync", 2*time.Second, "delta poll period for -index-follow")

		hubLoad     = fs.String("hub-load", "", "prebuilt hub labeling file (rkranks.SaveHubLabels format); enables the hublabel algorithm")
		hubSave     = fs.String("hub-save", "", "write the labeling built by -hub-count to this file before serving")
		hubCount    = fs.Int("hub-count", 0, "build a hub labeling with this many roots at startup (-1 = all nodes, a complete labeling)")
		hubStrategy = fs.String("hub-strategy", "degree", "root-selection strategy for -hub-count: random|degree|closeness")
		hubWorkers  = fs.Int("hub-workers", 0, "build parallelism for -hub-count (0 = GOMAXPROCS; the labeling is identical for any value)")

		shardSpec = fs.String("shard", "", "serve one vertex shard, as i/P (e.g. 0/4); the coordinator must use the same partitioner and P")
		shardPart = fs.String("shard-partitioner", "modulo", "partitioner for -shard: modulo|degree")

		liveMode = fs.Bool("live", false, "serve a mutable graph behind POST /v1/mutate: weight changes patch in place, topology changes rebuild and swap")

		cacheMB   = fs.Int("cache-mb", 0, "response cache budget in MiB (0 disables); duplicate in-flight queries coalesce onto one engine permit")
		poolSize  = fs.Int("pool", 0, "engine pool size (0 = GOMAXPROCS-derived)")
		refine    = fs.Int("refine-workers", 0, "intra-query refine workers per engine")
		algo      = fs.String("algo", "", "default algorithm (empty = indexed when an index is loaded, else dynamic)")
		inflight  = fs.Int("max-inflight", 0, "max requests served concurrently (0 = 2x pool)")
		queue     = fs.Int("max-queue", 0, "max requests waiting for a slot (0 = 4x max-inflight)")
		timeout   = fs.Duration("timeout", 10*time.Second, "default per-request deadline")
		maxTO     = fs.Duration("max-timeout", 60*time.Second, "cap on client-requested deadlines")
		drainTO   = fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
		accessLog = fs.Bool("access-log", true, "emit structured access logs")
		pprofOn   = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (see CONTRIBUTING.md)")
		metricsOn = fs.Bool("metrics", true, "mount GET /metrics (Prometheus text exposition)")
		slowMS    = fs.Int("slow-query-ms", 500, "flight-recorder slow threshold in ms; 0 records EVERY request to /debug/requestz")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *indexFollow != "" {
		if *liveMode {
			return fmt.Errorf("rkserve: -index-follow is not supported with -live (a live shard owns a private index that rebuilds swap out)")
		}
		if *indexPath != "" || *buildIndex {
			return fmt.Errorf("rkserve: -index-follow is mutually exclusive with -index/-build-index (the leader's snapshot IS the index)")
		}
	}

	g, err := loadGraph(*graphPath, *genType, *genNodes, *genSeed)
	if err != nil {
		return err
	}
	logger.Info("graph loaded", slog.Int("nodes", g.N()), slog.Int64("edges", g.M()), slog.Bool("directed", g.Directed()))

	// One registry-backed catalog for the whole process: the live store,
	// the response cache, and the server all record into it, so /metrics
	// is the union of their instruments.
	om := obs.NewMetrics(obs.NewRegistry())

	var healthExtra map[string]any
	var shardNo, shardCount int
	opts := core.Options{RefineWorkers: *refine}
	if *shardSpec != "" {
		mask, shard, shards, err := shardMask(g, *shardSpec, *shardPart)
		if err != nil {
			return err
		}
		opts.Candidates = mask
		shardNo, shardCount = shard, shards
		// Published on /healthz so a rkcluster coordinator can verify
		// shard ownership at startup (see cluster.NewRemoteShard).
		healthExtra = map[string]any{
			"shard":             fmt.Sprintf("%d/%d", shard, shards),
			"shard_partitioner": *shardPart,
		}
		logger.Info("serving one vertex shard",
			slog.Int("shard", shard), slog.Int("of", shards), slog.String("partitioner", *shardPart))
	}
	ix, err := loadOrBuildIndex(g, *indexPath, *buildIndex, *hubFrac, *rankFrac, *indexK, *genSeed, logger)
	if err != nil {
		return err
	}
	labels, err := loadOrBuildLabels(g, *hubLoad, *hubSave, *hubCount, *hubStrategy, *hubWorkers, *genSeed, logger)
	if err != nil {
		return err
	}
	var inner cache.Target
	var follower *cluster.IndexFollower
	if *liveMode {
		lcfg := live.Config{Options: opts, PoolSize: *poolSize, Labels: labels, Metrics: om}
		if ix != nil {
			lcfg.Index = ix
		}
		if *shardSpec != "" {
			// Rebuilds must recompute the shard mask: the boot-time mask
			// does not cover vertices added after boot.
			part, err := cluster.ParsePartitioner(*shardPart)
			if err != nil {
				return err
			}
			lcfg.CandidateFunc = func(g2 *graph.Graph) ([]bool, error) {
				return cluster.ShardMask(g2, part, shardCount, shardNo, nil)
			}
		}
		store, err := live.NewStore(g, lcfg)
		if err != nil {
			return err
		}
		inner = store
		logger.Info("live store ready", slog.Int("engines", store.Size()),
			slog.Bool("indexed", ix != nil), slog.Bool("hub_labeled", labels != nil),
			slog.Uint64("generation", store.Generation()))
	} else {
		// Any index an immutable rkserve serves is wrapped for
		// replication: refinements it learns from traffic append to a
		// delta log that GET /v1/index/snapshot + /v1/index/deltas expose
		// to follower replicas. With -index-follow, this instance IS such
		// a follower: it cold-starts from the leader's snapshot and a
		// background loop keeps absorbing the leader's deltas (while its
		// own traffic keeps teaching the same index, and it can lead
		// further replicas in turn).
		var repl *ridx.Replicated
		if *indexFollow != "" {
			var seq, gen uint64
			repl, seq, gen, err = bootstrapFollowerIndex(context.Background(), *indexFollow, logger)
			if err != nil {
				return err
			}
			om.IndexSnapshotsLoaded.Inc()
			follower = cluster.NewIndexFollower(repl, api.NewClient(*indexFollow), seq, gen, cluster.IndexFollowerConfig{
				Interval: *indexSync, Metrics: om, Logger: logger,
			})
			logger.Info("index bootstrapped from leader", slog.String("leader", *indexFollow),
				slog.Uint64("seq", seq), slog.Uint64("index_generation", gen), slog.Int("max_k", repl.MaxK()))
		} else if ix != nil {
			repl = ridx.NewReplicated(ix, 0)
		}
		var pool *core.Pool
		opts.Labels = labels
		if repl != nil {
			if pool, err = core.NewPoolWithIndex(g, opts, *poolSize, repl); err != nil {
				return err
			}
		} else {
			pool = core.NewPool(g, opts, *poolSize)
		}
		inner = pool
		logger.Info("pool ready", slog.Int("engines", pool.Size()), slog.Bool("indexed", repl != nil), slog.Bool("hub_labeled", labels != nil))
	}

	var backend server.Backend = inner
	if *cacheMB > 0 {
		cached, err := cache.NewBackend(inner, cache.Config{MaxBytes: int64(*cacheMB) << 20, Metrics: om})
		if err != nil {
			return err
		}
		backend = cached
		logger.Info("response cache enabled", slog.Int("budget_mb", *cacheMB))
	}

	cfg := server.Config{
		Backend:          backend,
		Graph:            g,
		DefaultAlgorithm: *algo,
		MaxInFlight:      *inflight,
		MaxQueue:         *queue,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTO,
		HealthExtra:      healthExtra,
		EnablePprof:      *pprofOn,
		Metrics:          om,
		EnableMetrics:    *metricsOn,
	}
	if *slowMS == 0 {
		cfg.SlowQueryThreshold = -1 // record every request
	} else {
		cfg.SlowQueryThreshold = time.Duration(*slowMS) * time.Millisecond
	}
	if *accessLog {
		cfg.AccessLog = logger
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	logger.Info("serving", slog.String("addr", ln.Addr().String()))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if follower != nil {
		go follower.Run(ctx)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second SIGTERM kills hard

	// Graceful drain: refuse new work (503 on /healthz flips the load
	// balancer), let every admitted request finish, then close the
	// listener. Shutdown alone would be enough for in-flight HTTP, but
	// Drain also flips health and guarantees the admission queue empties.
	logger.Info("draining", slog.Duration("timeout", *drainTO))
	dctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		logger.Error("drain incomplete", slog.String("err", err.Error()))
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	logger.Info("drained, exiting")
	return nil
}

// shardMask parses -shard's "i/P" spec into the shard's candidate mask.
func shardMask(g *graph.Graph, spec, partName string) ([]bool, int, int, error) {
	var shard, shards int
	if n, err := fmt.Sscanf(spec, "%d/%d", &shard, &shards); n != 2 || err != nil {
		return nil, 0, 0, fmt.Errorf("rkserve: -shard wants i/P (e.g. 0/4), got %q", spec)
	}
	if shards < 1 || shard < 0 || shard >= shards {
		return nil, 0, 0, fmt.Errorf("rkserve: -shard %q out of range", spec)
	}
	part, err := cluster.ParsePartitioner(partName)
	if err != nil {
		return nil, 0, 0, err
	}
	mask, err := cluster.ShardMask(g, part, shards, shard, nil)
	if err != nil {
		return nil, 0, 0, err
	}
	return mask, shard, shards, nil
}

// loadOrBuildLabels resolves the hub-labeling flags to a shared read-only
// labeling for Options.Labels (nil when serving without one).
func loadOrBuildLabels(g *graph.Graph, path, save string, count int, strategy string, workers int, seed int64, logger *slog.Logger) (*hub.Labels, error) {
	switch {
	case path != "" && count != 0:
		return nil, fmt.Errorf("rkserve: -hub-load and -hub-count are mutually exclusive")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		labels, err := hub.ReadLabels(f)
		if err != nil {
			return nil, err
		}
		if labels.N() != g.N() || labels.Directed() != g.Directed() {
			return nil, fmt.Errorf("rkserve: labeling %s covers %d nodes (directed=%v), graph has %d (directed=%v)",
				path, labels.N(), labels.Directed(), g.N(), g.Directed())
		}
		logger.Info("hub labeling loaded", slog.String("path", path),
			slog.Int("hubs", labels.HubCount()), slog.Int64("bytes", labels.Bytes()))
		return labels, nil
	case count == 0:
		return nil, nil
	}
	h := count
	if h < 0 || h > g.N() {
		h = g.N()
	}
	strat, err := hub.ParseStrategy(strategy)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	roots := hub.Order(g, strat, h, hub.Options{Seed: seed, Workers: workers})
	labels, err := hub.BuildLabels(g, roots, workers)
	if err != nil {
		return nil, err
	}
	logger.Info("hub labeling built",
		slog.Int("hubs", h), slog.String("strategy", strat.String()),
		slog.Int64("entries", labels.Entries()), slog.Int64("bytes", labels.Bytes()),
		slog.Duration("elapsed", time.Since(start)))
	if save != "" {
		f, err := os.Create(save)
		if err != nil {
			return nil, err
		}
		if err := labels.Write(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		logger.Info("hub labeling saved", slog.String("path", save))
	}
	return labels, nil
}

// loadGraph resolves -graph/-gen. The -gen parameters are shared with
// rkcluster through gen.Named: cluster shards and their coordinator must
// build bit-identical graphs.
func loadGraph(path, genType string, nodes int, seed int64) (*graph.Graph, error) {
	switch {
	case path != "" && genType != "":
		return nil, fmt.Errorf("rkserve: -graph and -gen are mutually exclusive")
	case path != "":
		return graph.ReadFile(path)
	case genType == "":
		return nil, fmt.Errorf("rkserve: one of -graph or -gen is required")
	}
	return gen.Named(genType, nodes, seed)
}

// bootstrapFollowerIndex cold-starts a replica's index from its leader's
// snapshot endpoint, retrying for up to a minute so a follower may boot
// concurrently with (slightly before) its leader.
func bootstrapFollowerIndex(ctx context.Context, base string, logger *slog.Logger) (*ridx.Replicated, uint64, uint64, error) {
	client := api.NewClient(base)
	deadline := time.Now().Add(time.Minute)
	for {
		bctx, cancel := context.WithTimeout(ctx, 15*time.Second)
		repl, seq, gen, err := cluster.BootstrapIndex(bctx, client, 0)
		cancel()
		if err == nil {
			return repl, seq, gen, nil
		}
		if ctx.Err() != nil || time.Now().After(deadline) {
			return nil, 0, 0, fmt.Errorf("rkserve: -index-follow bootstrap from %s: %w", base, err)
		}
		logger.Warn("index bootstrap failed; retrying", slog.String("leader", base), slog.String("err", err.Error()))
		time.Sleep(500 * time.Millisecond)
	}
}

// loadOrBuildIndex resolves the index flags to a concurrency-safe index
// (nil when serving index-free).
func loadOrBuildIndex(g *graph.Graph, path string, build bool, h, m float64, k int, seed int64, logger *slog.Logger) (*ridx.ShardedIndex, error) {
	switch {
	case path != "" && build:
		return nil, fmt.Errorf("rkserve: -index and -build-index are mutually exclusive")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		ix, err := ridx.ReadSharded(f)
		if err != nil {
			return nil, err
		}
		logger.Info("index loaded", slog.String("path", path), slog.Int("max_k", ix.MaxK()))
		return ix, nil
	case !build:
		return nil, nil
	}
	hn := int(float64(g.N()) * h)
	if hn < 1 {
		hn = 1
	}
	mn := int(float64(g.N()) * m)
	if mn < 1 {
		mn = 1
	}
	start := time.Now()
	hubs := hub.Select(g, hub.DegreeFirst, hn, hub.Options{Seed: seed})
	ix, err := ridx.BuildSharded(g, ridx.BuildParams{Hubs: hubs, M: mn, K: k}, 0)
	if err != nil {
		return nil, err
	}
	logger.Info("index built",
		slog.Int("hubs", hn), slog.Int("m", mn), slog.Int("max_k", k),
		slog.Duration("elapsed", time.Since(start)))
	return ix, nil
}
