package main

import (
	"context"
	"log/slog"
	"sync"
	"syscall"
	"testing"
	"time"

	"rkranks/internal/server"
)

// TestServeQueryAndSigtermDrain boots the real binary path (run) on an
// ephemeral port, serves queries, then delivers an actual SIGTERM
// mid-flight and asserts the drain contract: every in-flight request
// completes, late arrivals get 503, and run returns cleanly.
func TestServeQueryAndSigtermDrain(t *testing.T) {
	logger := slog.New(slog.DiscardHandler)
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-gen", "dblp", "-gen-nodes", "2500",
			"-build-index", "-index-k", "20", "-index-h", "0.05", "-index-m", "0.05",
			"-pool", "2", "-access-log=false",
		}, logger, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("server never became ready")
	}
	c := server.NewClient("http://" + addr)

	doc, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("healthz: %v (%v)", err, doc)
	}
	if doc["indexed"] != true {
		t.Errorf("healthz reports no index: %v", doc)
	}
	resp, err := c.Query(context.Background(), "", 3, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Algorithm != "indexed" || len(resp.Entries) != 5 {
		t.Errorf("query response: %+v", resp)
	}

	// Slow in-flight queries, then SIGTERM mid-flight.
	const n = 2
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Query(context.Background(), "naive", int32(i), 500, 30*time.Second)
		}(i)
	}
	// Give the slow queries time to be admitted before the signal.
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, err := c.Stats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if snap.InFlight >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow queries never in flight: %+v", snap)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("in-flight query %d dropped by SIGTERM drain: %v", i, err)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server never exited after SIGTERM")
	}
}

// TestFlagValidation covers the mutually exclusive / missing flag paths.
func TestFlagValidation(t *testing.T) {
	logger := slog.New(slog.DiscardHandler)
	cases := [][]string{
		{},                                // no graph source
		{"-graph", "a", "-gen", "dblp"},   // both sources
		{"-gen", "nope"},                  // unknown generator
		{"-gen", "dblp", "-shard", "2"},   // malformed shard spec
		{"-gen", "dblp", "-shard", "4/4"}, // shard index out of range
		{"-gen", "dblp", "-shard", "0/2", "-shard-partitioner", "nope"}, // unknown partitioner
	}
	for _, args := range cases {
		if err := run(args, logger, nil); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestShardFlagMasksCandidates boots rkserve as shard 1 of 2 (modulo) and
// checks it only ever answers with its own vertices — the contract a
// rkcluster coordinator depends on.
func TestShardFlagMasksCandidates(t *testing.T) {
	logger := slog.New(slog.DiscardHandler)
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-gen", "dblp", "-gen-nodes", "800",
			"-shard", "1/2",
			"-pool", "1", "-access-log=false",
		}, logger, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("server never became ready")
	}
	c := server.NewClient("http://" + addr)
	resp, err := c.Query(context.Background(), "dynamic", 4, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Entries) == 0 {
		t.Fatal("shard answered nothing")
	}
	for _, e := range resp.Entries {
		if e.Node%2 != 1 {
			t.Errorf("entry %+v is not owned by shard 1 of 2 (modulo)", e)
		}
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("server never exited after SIGTERM")
	}
}

// TestCacheFlagServesRepeatsFromCache boots rkserve with -cache-mb and
// asserts a repeated query hits the response cache (the /statsz cache
// section moves) while answering byte-identically.
func TestCacheFlagServesRepeatsFromCache(t *testing.T) {
	logger := slog.New(slog.DiscardHandler)
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-gen", "dblp", "-gen-nodes", "800",
			"-pool", "1", "-cache-mb", "8", "-access-log=false",
		}, logger, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("server never became ready")
	}
	c := server.NewClient("http://" + addr)
	first, err := c.Query(context.Background(), "dynamic", 5, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Query(context.Background(), "dynamic", 5, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Entries) != len(second.Entries) {
		t.Fatalf("cached repeat diverged: %v vs %v", first.Entries, second.Entries)
	}
	for i := range first.Entries {
		if first.Entries[i] != second.Entries[i] {
			t.Fatalf("cached repeat diverged at %d: %v vs %v", i, first.Entries, second.Entries)
		}
	}
	snap, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	doc, ok := snap.Cache.(map[string]any)
	if !ok {
		t.Fatalf("statsz has no cache section: %#v", snap.Cache)
	}
	if doc["hits"] != float64(1) || doc["misses"] != float64(1) {
		t.Errorf("cache counters = %v, want one miss then one hit", doc)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
}
