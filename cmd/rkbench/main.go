// Command rkbench regenerates the paper's evaluation tables and figures
// (Section 6) on the synthetic stand-in datasets. Each experiment prints a
// table whose rows mirror the paper's; see EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Usage:
//
//	rkbench -exp all                 # the full suite at the default scale
//	rkbench -exp figure6 -scale small
//	rkbench -exp table11 -queries 200 -seed 7
//	rkbench -exp serving -workers 8  # pooled Indexed QPS on a shared index
//	rkbench -exp latency -refine-workers 8   # intra-query parallelism sweep
//	rkbench -exp latency -json       # also write BENCH_latency.json
//	rkbench -list
//
// With -json, each experiment additionally writes a machine-readable
// BENCH_<experiment>.json in the working directory, so perf trajectories
// can be tracked across commits without scraping the text tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"rkranks/internal/experiments"
	"rkranks/internal/stats"
)

// jsonReport is the machine-readable form of one experiment's output.
type jsonReport struct {
	Experiment string         `json:"experiment"`
	Scale      string         `json:"scale"`
	ElapsedSec float64        `json:"elapsed_sec"`
	Tables     []*stats.Table `json:"tables"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rkbench: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rkbench", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment name or 'all' (see -list)")
		scale   = fs.String("scale", "default", "dataset scale: small|default")
		queries = fs.Int("queries", 0, "override queries per measurement point")
		workers = fs.Int("workers", 0, "max pool workers for the serving experiment (0 = GOMAXPROCS)")
		refine  = fs.Int("refine-workers", 0, "max intra-query refine workers for the latency experiment (0 = GOMAXPROCS)")
		seed    = fs.Int64("seed", 0, "override random seed")
		ksFlag  = fs.String("ks", "", "override k axis, comma separated (e.g. 5,10,20)")
		jsonOut = fs.Bool("json", false, "also write BENCH_<experiment>.json per experiment")
		list    = fs.Bool("list", false, "list experiment names and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, n := range experiments.Names() {
			fmt.Fprintln(stdout, n)
		}
		return nil
	}

	var cfg experiments.Config
	switch *scale {
	case "small":
		cfg = experiments.Small()
	case "default":
		cfg = experiments.Default()
	default:
		return fmt.Errorf("unknown -scale %q (want small|default)", *scale)
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *refine > 0 {
		cfg.RefineWorkers = *refine
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *ksFlag != "" {
		cfg.Ks = nil
		for _, part := range strings.Split(*ksFlag, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad -ks entry %q: %v", part, err)
			}
			cfg.Ks = append(cfg.Ks, k)
			if k > cfg.KMax {
				cfg.KMax = k
			}
		}
	}

	runner, err := experiments.NewRunner(cfg)
	if err != nil {
		return err
	}

	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		tables, err := runner.Run(name)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		elapsed := time.Since(start)
		fmt.Fprintf(stdout, "=== %s (%v) ===\n", name, elapsed.Round(time.Millisecond))
		for _, t := range tables {
			if err := t.Render(stdout); err != nil {
				return err
			}
		}
		if *jsonOut {
			if err := writeJSON(name, *scale, elapsed, tables); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
	}
	return nil
}

// writeJSON records one experiment's tables as BENCH_<name>.json in the
// working directory.
func writeJSON(name, scale string, elapsed time.Duration, tables []*stats.Table) error {
	report := jsonReport{
		Experiment: name,
		Scale:      scale,
		ElapsedSec: elapsed.Seconds(),
		Tables:     tables,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(fmt.Sprintf("BENCH_%s.json", name), append(data, '\n'), 0o644)
}
