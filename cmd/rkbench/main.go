// Command rkbench regenerates the paper's evaluation tables and figures
// (Section 6) on the synthetic stand-in datasets. Each experiment prints a
// table whose rows mirror the paper's; see EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Usage:
//
//	rkbench -exp all                 # the full suite at the default scale
//	rkbench -exp figure6 -scale small
//	rkbench -exp figure6,latency -json       # a comma-separated subset
//	rkbench -exp table11 -queries 200 -seed 7
//	rkbench -exp serving -workers 8  # pooled Indexed QPS on a shared index
//	rkbench -exp latency -refine-workers 8   # intra-query parallelism sweep
//	rkbench -exp serving_http        # in-process HTTP load sweep
//	rkbench -list
//
// With -json, each experiment additionally writes a machine-readable
// BENCH_<experiment>.json in the working directory, so perf trajectories
// can be tracked across commits without scraping the text tables
// (cmd/benchdiff compares two sets of these artifacts in CI).
//
// Load-generator mode drives a LIVE rkserve instance instead of running
// in-process experiments — open-loop arrivals at fixed offered rates:
//
//	rkbench -serve-url http://localhost:8080 -rate 200,400,800 -duration 10s -k 10
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"rkranks"
	"rkranks/internal/experiments"
	"rkranks/internal/server"
	"rkranks/internal/stats"
)

// jsonReport is the machine-readable form of one experiment's output.
type jsonReport struct {
	Experiment string  `json:"experiment"`
	Scale      string  `json:"scale"`
	ElapsedSec float64 `json:"elapsed_sec"`
	// AllocsPerQuery / BytesPerQuery summarize the steady-state allocation
	// cost of the warm batch-serving hot path at this scale, measured once
	// per invocation (experiments.Runner.SteadyStateAllocs); nil in
	// load-generator mode. The per-sweep-point breakdown lives in the
	// latency experiment's allocs/query and bytes/query columns, which is
	// where benchdiff gates it.
	AllocsPerQuery *float64       `json:"allocs_per_query,omitempty"`
	BytesPerQuery  *float64       `json:"bytes_per_query,omitempty"`
	Tables         []*stats.Table `json:"tables"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rkbench: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rkbench", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment name or 'all' (see -list)")
		scale   = fs.String("scale", "default", "dataset scale: small|default")
		queries = fs.Int("queries", 0, "override queries per measurement point")
		workers = fs.Int("workers", 0, "max pool workers for the serving experiment (0 = GOMAXPROCS)")
		refine  = fs.Int("refine-workers", 0, "max intra-query refine workers for the latency experiment (0 = GOMAXPROCS)")
		seed    = fs.Int64("seed", 0, "override random seed")
		ksFlag  = fs.String("ks", "", "override k axis, comma separated (e.g. 5,10,20)")
		jsonOut = fs.Bool("json", false, "also write BENCH_<experiment>.json per experiment")
		list    = fs.Bool("list", false, "list experiment names and exit")

		serveURL = fs.String("serve-url", "", "load-generator mode: base URL of a running rkserve (e.g. http://localhost:8080)")
		rates    = fs.String("rate", "100,200,400", "offered arrival rates (req/s) to sweep, comma separated (-serve-url mode)")
		duration = fs.Duration("duration", 5*time.Second, "measurement window per offered rate (-serve-url mode)")
		algo     = fs.String("algo", "", "per-request algorithm; empty = server default (-serve-url mode)")
		loadK    = fs.Int("k", 10, "result size per request (-serve-url mode)")
		timeout  = fs.Duration("timeout", 2*time.Second, "per-request deadline (-serve-url mode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *serveURL != "" {
		return runLoadGen(stdout, loadGenParams{
			url: *serveURL, rates: *rates, duration: *duration,
			algo: *algo, k: *loadK, timeout: *timeout,
			seed: *seed, jsonOut: *jsonOut,
		})
	}

	if *list {
		for _, n := range experiments.Names() {
			fmt.Fprintln(stdout, n)
		}
		return nil
	}

	var cfg experiments.Config
	switch *scale {
	case "small":
		cfg = experiments.Small()
	case "default":
		cfg = experiments.Default()
	default:
		return fmt.Errorf("unknown -scale %q (want small|default)", *scale)
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *refine > 0 {
		cfg.RefineWorkers = *refine
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *ksFlag != "" {
		cfg.Ks = nil
		for _, part := range strings.Split(*ksFlag, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad -ks entry %q: %v", part, err)
			}
			cfg.Ks = append(cfg.Ks, k)
			if k > cfg.KMax {
				cfg.KMax = k
			}
		}
	}

	runner, err := experiments.NewRunner(cfg)
	if err != nil {
		return err
	}

	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = experiments.Names()
	}
	var allocsPQ, bytesPQ *float64
	if *jsonOut {
		// One steady-state allocation sample per invocation, stamped into
		// every report written below.
		a, b, err := runner.SteadyStateAllocs()
		if err != nil {
			return fmt.Errorf("steady-state alloc probe: %w", err)
		}
		allocsPQ, bytesPQ = &a, &b
		fmt.Fprintf(stdout, "steady state: %.2f allocs/query, %.1f bytes/query\n", a, b)
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		start := time.Now()
		tables, err := runner.Run(name)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		elapsed := time.Since(start)
		fmt.Fprintf(stdout, "=== %s (%v) ===\n", name, elapsed.Round(time.Millisecond))
		for _, t := range tables {
			if err := t.Render(stdout); err != nil {
				return err
			}
		}
		if *jsonOut {
			if err := writeJSON(name, *scale, elapsed, tables, allocsPQ, bytesPQ); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
	}
	return nil
}

// writeJSON records one experiment's tables as BENCH_<name>.json in the
// working directory.
func writeJSON(name, scale string, elapsed time.Duration, tables []*stats.Table, allocsPQ, bytesPQ *float64) error {
	report := jsonReport{
		Experiment:     name,
		Scale:          scale,
		ElapsedSec:     elapsed.Seconds(),
		AllocsPerQuery: allocsPQ,
		BytesPerQuery:  bytesPQ,
		Tables:         tables,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(fmt.Sprintf("BENCH_%s.json", name), append(data, '\n'), 0o644)
}

// --- load-generator mode (-serve-url) -----------------------------------

type loadGenParams struct {
	url      string
	rates    string
	duration time.Duration
	algo     string
	k        int
	timeout  time.Duration
	seed     int64
	jsonOut  bool
}

// runLoadGen sweeps open-loop offered load against a live rkserve and
// prints (and with -json records) one row per offered rate. Query nodes
// are sampled uniformly from the server's graph, discovered via /healthz.
func runLoadGen(stdout io.Writer, p loadGenParams) error {
	client := rkranks.NewClient(p.url)
	doc, err := client.Health(context.Background())
	if err != nil {
		return fmt.Errorf("load generator: server not healthy: %w", err)
	}
	nodes, ok := doc["graph_nodes"].(float64)
	if !ok || nodes < 1 {
		return fmt.Errorf("load generator: /healthz reports no graph: %v", doc)
	}
	if p.seed == 0 {
		p.seed = 1
	}
	rng := rand.New(rand.NewSource(p.seed))
	queries := make([]int32, 4096)
	for i := range queries {
		queries[i] = int32(rng.Intn(int(nodes)))
	}

	t := stats.NewTable(fmt.Sprintf("Load generator: open-loop sweep against %s (k=%d)", p.url, p.k),
		"offered (qps)", "achieved (qps)", "sent", "ok", "rejected", "timeout", "errors", "shed", "p50 (ms)", "p99 (ms)")
	start := time.Now()
	for _, part := range strings.Split(p.rates, ",") {
		rate, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || rate <= 0 {
			return fmt.Errorf("bad -rate entry %q", part)
		}
		res, err := server.RunLoad(context.Background(), server.LoadConfig{
			URL:       p.url,
			Algorithm: p.algo,
			Queries:   queries,
			K:         p.k,
			Rate:      rate,
			Duration:  p.duration,
			Timeout:   p.timeout,
			Seed:      p.seed + int64(rate),
		})
		if err != nil {
			return err
		}
		t.Add(fmt.Sprintf("%.0f", res.Offered), fmt.Sprintf("%.0f", res.Achieved),
			res.Sent, res.OK, res.Rejected, res.Deadline, res.Errors, res.Shed,
			fmt.Sprintf("%.2f", res.P50), fmt.Sprintf("%.2f", res.P99))
	}
	t.Note("open loop: arrivals are scheduled at the offered rate regardless of completions; rejected = server 429 admission shed, shed = generator-side drops at the outstanding cap")
	if err := t.Render(stdout); err != nil {
		return err
	}
	if p.jsonOut {
		return writeJSON("loadgen", "live", time.Since(start), []*stats.Table{t}, nil, nil)
	}
	return nil
}
