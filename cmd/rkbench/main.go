// Command rkbench regenerates the paper's evaluation tables and figures
// (Section 6) on the synthetic stand-in datasets. Each experiment prints a
// table whose rows mirror the paper's; see EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Usage:
//
//	rkbench -exp all                 # the full suite at the default scale
//	rkbench -exp figure6 -scale small
//	rkbench -exp table11 -queries 200 -seed 7
//	rkbench -exp serving -workers 8  # pooled Indexed QPS on a shared index
//	rkbench -list
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"rkranks/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rkbench: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rkbench", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment name or 'all' (see -list)")
		scale   = fs.String("scale", "default", "dataset scale: small|default")
		queries = fs.Int("queries", 0, "override queries per measurement point")
		workers = fs.Int("workers", 0, "max pool workers for the serving experiment (0 = GOMAXPROCS)")
		seed    = fs.Int64("seed", 0, "override random seed")
		ksFlag  = fs.String("ks", "", "override k axis, comma separated (e.g. 5,10,20)")
		list    = fs.Bool("list", false, "list experiment names and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, n := range experiments.Names() {
			fmt.Fprintln(stdout, n)
		}
		return nil
	}

	var cfg experiments.Config
	switch *scale {
	case "small":
		cfg = experiments.Small()
	case "default":
		cfg = experiments.Default()
	default:
		return fmt.Errorf("unknown -scale %q (want small|default)", *scale)
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *ksFlag != "" {
		cfg.Ks = nil
		for _, part := range strings.Split(*ksFlag, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad -ks entry %q: %v", part, err)
			}
			cfg.Ks = append(cfg.Ks, k)
			if k > cfg.KMax {
				cfg.KMax = k
			}
		}
	}

	runner, err := experiments.NewRunner(cfg)
	if err != nil {
		return err
	}

	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		tables, err := runner.Run(name)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(stdout, "=== %s (%v) ===\n", name, time.Since(start).Round(time.Millisecond))
		for _, t := range tables {
			if err := t.Render(stdout); err != nil {
				return err
			}
		}
	}
	return nil
}
