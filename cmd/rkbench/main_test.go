package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"rkranks/internal/core"
	"rkranks/internal/gen"
	"rkranks/internal/server"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table3", "figure6", "figure7", "table15"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("missing %q in list:\n%s", want, sb.String())
		}
	}
}

func TestRunSingleExperimentSmall(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-exp", "table3", "-scale", "small"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "=== table3") || !strings.Contains(out, "largest set size") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunOverrides(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-exp", "figure7", "-scale", "small", "-queries", "3", "-seed", "5", "-ks", "5,10"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "3 queries per point") {
		t.Errorf("queries override missing:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scale", "wat"}, &sb); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run([]string{"-exp", "table99", "-scale", "small"}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-ks", "x,y", "-scale", "small"}, &sb); err == nil {
		t.Error("bad ks accepted")
	}
}

func TestRunExperimentList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "table3, table4", "-scale", "small"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "=== table3") || !strings.Contains(out, "=== table4") {
		t.Errorf("comma list did not run both experiments:\n%s", out)
	}
}

// TestLoadGenMode drives the -serve-url load generator against an
// in-process serving stack and checks the table and JSON artifact.
func TestLoadGenMode(t *testing.T) {
	t.Chdir(t.TempDir())
	g := gen.DBLPLike(gen.DBLPLikeParams{Nodes: 300, AttachPerNode: 4, Seed: 3})
	pool := core.NewPool(g, core.Options{}, 2)
	srv, err := server.New(server.Config{Pool: pool, Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var sb strings.Builder
	err = run([]string{
		"-serve-url", ts.URL, "-rate", "50,100", "-duration", "300ms",
		"-k", "5", "-algo", "dynamic", "-json",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Load generator") || !strings.Contains(out, "offered (qps)") {
		t.Errorf("output:\n%s", out)
	}
	data, err := os.ReadFile("BENCH_loadgen.json")
	if err != nil {
		t.Fatalf("missing JSON artifact: %v", err)
	}
	var report struct {
		Experiment string `json:"experiment"`
		Tables     []struct {
			Rows [][]string `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if report.Experiment != "loadgen" || len(report.Tables) != 1 || len(report.Tables[0].Rows) != 2 {
		t.Errorf("report = %+v", report)
	}

	if err := run([]string{"-serve-url", ts.URL, "-rate", "bogus"}, &sb); err == nil {
		t.Error("bad -rate accepted")
	}
	if err := run([]string{"-serve-url", "http://127.0.0.1:1"}, &sb); err == nil {
		t.Error("unreachable server accepted")
	}
}

func TestRunLatencyWithJSON(t *testing.T) {
	t.Chdir(t.TempDir())
	var sb strings.Builder
	err := run([]string{"-exp", "latency", "-scale", "small", "-queries", "4", "-refine-workers", "2", "-json"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "=== latency") || !strings.Contains(out, "refine workers") {
		t.Errorf("output:\n%s", out)
	}
	data, err := os.ReadFile("BENCH_latency.json")
	if err != nil {
		t.Fatalf("missing JSON artifact: %v", err)
	}
	var report struct {
		Experiment string  `json:"experiment"`
		Scale      string  `json:"scale"`
		ElapsedSec float64 `json:"elapsed_sec"`
		Tables     []struct {
			Title   string     `json:"title"`
			Headers []string   `json:"headers"`
			Rows    [][]string `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("artifact is not valid JSON: %v\n%s", err, data)
	}
	if report.Experiment != "latency" || report.Scale != "small" || len(report.Tables) != 1 {
		t.Errorf("report = %+v", report)
	}
	if rows := report.Tables[0].Rows; len(rows) < 4 {
		t.Errorf("expected a sweep with >= 4 rows, got %d", len(rows))
	}
}
