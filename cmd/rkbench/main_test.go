package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table3", "figure6", "figure7", "table15"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("missing %q in list:\n%s", want, sb.String())
		}
	}
}

func TestRunSingleExperimentSmall(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-exp", "table3", "-scale", "small"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "=== table3") || !strings.Contains(out, "largest set size") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunOverrides(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-exp", "figure7", "-scale", "small", "-queries", "3", "-seed", "5", "-ks", "5,10"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "3 queries per point") {
		t.Errorf("queries override missing:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scale", "wat"}, &sb); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run([]string{"-exp", "table99", "-scale", "small"}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-ks", "x,y", "-scale", "small"}, &sb); err == nil {
		t.Error("bad ks accepted")
	}
}
