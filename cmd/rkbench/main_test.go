package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table3", "figure6", "figure7", "table15"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("missing %q in list:\n%s", want, sb.String())
		}
	}
}

func TestRunSingleExperimentSmall(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-exp", "table3", "-scale", "small"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "=== table3") || !strings.Contains(out, "largest set size") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunOverrides(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-exp", "figure7", "-scale", "small", "-queries", "3", "-seed", "5", "-ks", "5,10"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "3 queries per point") {
		t.Errorf("queries override missing:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scale", "wat"}, &sb); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run([]string{"-exp", "table99", "-scale", "small"}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-ks", "x,y", "-scale", "small"}, &sb); err == nil {
		t.Error("bad ks accepted")
	}
}

func TestRunLatencyWithJSON(t *testing.T) {
	t.Chdir(t.TempDir())
	var sb strings.Builder
	err := run([]string{"-exp", "latency", "-scale", "small", "-queries", "4", "-refine-workers", "2", "-json"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "=== latency") || !strings.Contains(out, "refine workers") {
		t.Errorf("output:\n%s", out)
	}
	data, err := os.ReadFile("BENCH_latency.json")
	if err != nil {
		t.Fatalf("missing JSON artifact: %v", err)
	}
	var report struct {
		Experiment string  `json:"experiment"`
		Scale      string  `json:"scale"`
		ElapsedSec float64 `json:"elapsed_sec"`
		Tables     []struct {
			Title   string     `json:"title"`
			Headers []string   `json:"headers"`
			Rows    [][]string `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("artifact is not valid JSON: %v\n%s", err, data)
	}
	if report.Experiment != "latency" || report.Scale != "small" || len(report.Tables) != 1 {
		t.Errorf("report = %+v", report)
	}
	if rows := report.Tables[0].Rows; len(rows) < 4 {
		t.Errorf("expected a sweep with >= 4 rows, got %d", len(rows))
	}
}
