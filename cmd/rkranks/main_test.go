package main

import (
	"path/filepath"
	"strings"
	"testing"

	"rkranks/internal/graph"
	tg "rkranks/internal/testgraphs"
)

func writeToy(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "toy.rkg")
	if err := graph.WriteFile(path, tg.Toy()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBasicQuery(t *testing.T) {
	path := writeToy(t)
	var sb strings.Builder
	if err := run([]string{"-graph", path, "-qlabel", "Alice", "-k", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Bob (rank 3)", "Caroline (rank 4)", "[dynamic]"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunCompareAndTrace(t *testing.T) {
	path := writeToy(t)
	var sb strings.Builder
	if err := run([]string{"-graph", path, "-qlabel", "Alice", "-k", "2", "-compare", "-trace"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"[naive]", "[static]", "[dynamic]", "trace: pruned-by-bound"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunIndexedWithSaveAndLoad(t *testing.T) {
	path := writeToy(t)
	idxPath := filepath.Join(t.TempDir(), "toy.rki")
	var sb strings.Builder
	err := run([]string{"-graph", path, "-qlabel", "Eric", "-k", "2",
		"-algo", "indexed", "-h", "0.5", "-m", "0.9", "-kmax", "4",
		"-saveindex", idxPath}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "saved index to") {
		t.Errorf("no save confirmation:\n%s", sb.String())
	}
	sb.Reset()
	err = run([]string{"-graph", path, "-qlabel", "Eric", "-k", "2",
		"-algo", "indexed", "-loadindex", idxPath}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "loaded index from") {
		t.Errorf("no load confirmation:\n%s", out)
	}
	if !strings.Contains(out, "Bob (rank 1)") || !strings.Contains(out, "Sid (rank 1)") {
		t.Errorf("wrong result:\n%s", out)
	}
}

func TestRunTopKAndReverseTopK(t *testing.T) {
	path := writeToy(t)
	var sb strings.Builder
	if err := run([]string{"-graph", path, "-qlabel", "Alice", "-k", "3", "-query", "topk"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Bob (distance 1)") {
		t.Errorf("topk output:\n%s", sb.String())
	}
	sb.Reset()
	if err := run([]string{"-graph", path, "-qlabel", "Eric", "-k", "2", "-query", "reverse-topk"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(6 nodes)") {
		t.Errorf("reverse-topk output:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	path := writeToy(t)
	var sb strings.Builder
	cases := [][]string{
		{},                                    // missing -graph
		{"-graph", "/does/not/exist"},         // bad file
		{"-graph", path, "-q", "99"},          // out of range
		{"-graph", path, "-qlabel", "Nobody"}, // unknown label
		{"-graph", path, "-q", "0", "-query", "wat"},  // bad query type
		{"-graph", path, "-q", "0", "-algo", "wat"},   // bad algo
		{"-graph", path, "-q", "0", "-bounds", "wat"}, // bad bounds
		{"-graph", path, "-q", "0", "-algo", "indexed", "-loadindex", "/nope"},
	}
	for i, args := range cases {
		if err := run(args, &sb); err == nil {
			t.Errorf("case %d (%v) accepted", i, args)
		}
	}
}
