// Command rkranks answers reverse k-ranks queries (and the related top-k /
// reverse top-k queries) against a graph file.
//
// Usage:
//
//	rkranks -graph dblp.rkg -q 42 -k 10
//	rkranks -graph dblp.rkg -q 42 -k 10 -algo indexed -h 0.1 -m 0.1 -saveindex dblp.rki
//	rkranks -graph toy.txt -qlabel Alice -k 2 -compare -trace
//	rkranks -graph dblp.rkg -q 42 -k 10 -query reverse-topk
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"rkranks/internal/core"
	"rkranks/internal/graph"
	"rkranks/internal/hub"
	"rkranks/internal/ridx"
	"rkranks/internal/topk"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rkranks: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

type cliOptions struct {
	graphPath string
	q         int
	qlabel    string
	k         int
	algo      string
	queryType string
	bounds    string
	hFrac     float64
	mFrac     float64
	strat     string
	kmax      int
	seed      int64
	compare   bool
	trace     bool
	saveIndex string
	loadIndex string
}

func parseFlags(args []string) (*cliOptions, error) {
	fs := flag.NewFlagSet("rkranks", flag.ContinueOnError)
	o := &cliOptions{}
	fs.StringVar(&o.graphPath, "graph", "", "graph file (required)")
	fs.IntVar(&o.q, "q", -1, "query node id")
	fs.StringVar(&o.qlabel, "qlabel", "", "query node label (alternative to -q)")
	fs.IntVar(&o.k, "k", 10, "result size")
	fs.StringVar(&o.algo, "algo", "dynamic", "engine: naive|static|dynamic|indexed")
	fs.StringVar(&o.queryType, "query", "rkranks", "query type: rkranks|topk|reverse-topk")
	fs.StringVar(&o.bounds, "bounds", "three", "dynamic bounds: parent|count|height|three")
	fs.Float64Var(&o.hFrac, "h", 0.1, "hub fraction (indexed)")
	fs.Float64Var(&o.mFrac, "m", 0.1, "per-hub rank fraction (indexed)")
	fs.StringVar(&o.strat, "hubs", "degree", "hub strategy: random|degree|closeness")
	fs.IntVar(&o.kmax, "kmax", 100, "index K (indexed)")
	fs.Int64Var(&o.seed, "seed", 1, "random seed")
	fs.BoolVar(&o.compare, "compare", false, "run naive, static and dynamic and compare")
	fs.BoolVar(&o.trace, "trace", false, "print the engine's per-node decision trace")
	fs.StringVar(&o.saveIndex, "saveindex", "", "save the built index to this path (indexed)")
	fs.StringVar(&o.loadIndex, "loadindex", "", "load an index from this path instead of building (indexed)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.graphPath == "" {
		return nil, fmt.Errorf("-graph is required")
	}
	return o, nil
}

func run(args []string, stdout io.Writer) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	g, err := graph.ReadFile(o.graphPath)
	if err != nil {
		return fmt.Errorf("loading graph: %w", err)
	}
	fmt.Fprintf(stdout, "graph: %d nodes, %d edges, directed=%v\n", g.N(), g.M(), g.Directed())

	query := int32(o.q)
	if o.qlabel != "" {
		id, ok := g.NodeByLabel(o.qlabel)
		if !ok {
			return fmt.Errorf("no node labeled %q", o.qlabel)
		}
		query = id
	}
	if query < 0 || int(query) >= g.N() {
		return fmt.Errorf("query node %d out of range", query)
	}

	switch o.queryType {
	case "topk":
		for i, e := range topk.TopK(g, query, o.k) {
			fmt.Fprintf(stdout, "%3d. %s (distance %g)\n", i+1, g.Label(e.Node), e.Dist)
		}
		return nil
	case "reverse-topk":
		res := topk.ReverseTopK(g, query, o.k)
		fmt.Fprintf(stdout, "reverse top-%d result (%d nodes):\n", o.k, len(res))
		for _, e := range res {
			fmt.Fprintf(stdout, "  %s (rank %d)\n", g.Label(e.Node), e.Rank)
		}
		return nil
	case "rkranks":
	default:
		return fmt.Errorf("unknown -query %q", o.queryType)
	}

	b, err := core.ParseBounds(o.bounds)
	if err != nil {
		return err
	}
	eng := core.NewEngine(g, core.Options{Bounds: b})
	eng.SetTracing(o.trace)

	algos := []string{o.algo}
	if o.compare {
		algos = []string{"naive", "static", "dynamic"}
	}
	for _, name := range algos {
		a, err := core.ParseAlgorithm(name)
		if err != nil {
			return err
		}
		if a == core.Indexed {
			ix, err := obtainIndex(o, g, stdout)
			if err != nil {
				return err
			}
			eng.SetIndex(ix)
		}
		start := time.Now()
		res, err := eng.Query(a, query, o.k)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		fmt.Fprintf(stdout, "\n[%s] reverse %d-ranks of %s (%v, %d refinements):\n",
			a, o.k, g.Label(query), elapsed.Round(time.Microsecond), res.Stats.Refinements)
		for i, e := range res.Entries {
			fmt.Fprintf(stdout, "%3d. %s (rank %d)\n", i+1, g.Label(e.Node), e.Rank)
		}
		for _, ev := range res.Trace {
			fmt.Fprintf(stdout, "    trace: %s (%s)\n", ev, g.Label(ev.Node))
		}
		if a == core.Indexed && o.saveIndex != "" {
			if err := writeIndex(o.saveIndex, eng.Index()); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "saved index to %s\n", o.saveIndex)
		}
	}
	return nil
}

func obtainIndex(o *cliOptions, g *graph.Graph, stdout io.Writer) (ridx.Index, error) {
	if o.loadIndex != "" {
		f, err := os.Open(o.loadIndex)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		ix, err := ridx.Read(f)
		if err != nil {
			return nil, fmt.Errorf("loading index: %w", err)
		}
		fmt.Fprintf(stdout, "loaded index from %s (%d entries)\n", o.loadIndex, ix.Entries())
		return ix, nil
	}
	st, err := hub.ParseStrategy(o.strat)
	if err != nil {
		return nil, err
	}
	h := int(float64(g.N()) * o.hFrac)
	if h < 1 {
		h = 1
	}
	m := int(float64(g.N()) * o.mFrac)
	if m < 1 {
		m = 1
	}
	fmt.Fprintf(stdout, "building index (H=%d, M=%d, K=%d, %s hubs)...\n", h, m, o.kmax, st)
	start := time.Now()
	ix, err := ridx.BuildParallel(g, ridx.BuildParams{
		Hubs: hub.Select(g, st, h, hub.Options{Seed: o.seed}),
		M:    m, K: o.kmax,
	}, 0)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(stdout, "index built in %v (%d entries, ~%d bytes)\n",
		time.Since(start).Round(time.Millisecond), ix.Entries(), ix.SizeBytes())
	return ix, nil
}

func writeIndex(path string, ix ridx.Index) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ix.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
