// Command benchdiff compares two sets of rkbench BENCH_<experiment>.json
// artifacts — a committed baseline and a fresh run — and fails (exit 1)
// when any tracked experiment regressed beyond the threshold. CI runs it
// after the bench job so a perf regression breaks the build with a diff
// a human can read.
//
// Usage:
//
//	benchdiff -baseline bench/baseline -current . -threshold 0.25
//	benchdiff -baseline bench/baseline -current . -experiments figure6,latency
//
// What is compared, per experiment:
//
//   - elapsed_sec: total wall clock of the experiment;
//   - every numeric metric cell of every table, matched by position, with
//     the direction inferred from the column header: "QPS", "speedup",
//     "achieved", "goodput"/"q/s", "hit rate", and "coalesce" columns
//     regress when they FALL, time/latency/work columns ("(s)", "(ms)",
//     "refine...", "settled", "rpcs", ...) regress when they RISE.
//     Identity columns (dataset, k, workers, ...) and cells below the
//     noise floor are skipped.
//
// Two gates apply. Work-counter columns are deterministic for a fixed
// seed and config, so they catch algorithmic regressions
// machine-independently and fail beyond -threshold (default 25%).
// Wall-clock-dependent columns (times, latencies, QPS, elapsed_sec)
// carry machine noise — the committed baseline was produced on different
// hardware than the CI runner — so they fail only beyond the laxer
// -time-threshold (default 100%), catching catastrophic slowdowns
// without turning runner jitter into red builds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

type report struct {
	Experiment string  `json:"experiment"`
	Scale      string  `json:"scale"`
	ElapsedSec float64 `json:"elapsed_sec"`
	Tables     []table `json:"tables"`
}

type table struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	os.Exit(code)
}

func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		baseDir   = fs.String("baseline", "bench/baseline", "directory holding the committed BENCH_*.json baselines")
		curDir    = fs.String("current", ".", "directory holding the freshly produced BENCH_*.json artifacts")
		threshold = fs.Float64("threshold", 0.25, "relative regression beyond which deterministic (work-counter) metrics fail (0.25 = 25%)")
		timeThr   = fs.Float64("time-threshold", 1.0, "relative regression beyond which wall-clock-dependent metrics (times, latencies, QPS, elapsed_sec) fail; laxer by default because they carry machine noise across runners")
		expFlag   = fs.String("experiments", "", "comma-separated experiments to compare (default: every baseline file)")
	)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	names, err := trackedExperiments(*baseDir, *expFlag)
	if err != nil {
		return 2, err
	}
	if len(names) == 0 {
		return 2, fmt.Errorf("no baselines found in %s", *baseDir)
	}

	var regressions, warnings int
	for _, name := range names {
		base, err := readReport(filepath.Join(*baseDir, "BENCH_"+name+".json"))
		if err != nil {
			return 2, err
		}
		cur, err := readReport(filepath.Join(*curDir, "BENCH_"+name+".json"))
		if err != nil {
			return 2, fmt.Errorf("current artifact for %q missing (did the bench job run it?): %w", name, err)
		}
		r, w := diffExperiment(stdout, name, base, cur, *threshold, *timeThr)
		regressions += r
		warnings += w
	}
	fmt.Fprintf(stdout, "\nbenchdiff: %d experiment(s), %d regression(s), %d warning(s), thresholds %.0f%% (counters) / %.0f%% (wall clock)\n",
		len(names), regressions, warnings, *threshold*100, *timeThr*100)
	if regressions > 0 {
		return 1, nil
	}
	return 0, nil
}

func trackedExperiments(baseDir, expFlag string) ([]string, error) {
	if expFlag != "" {
		parts := strings.Split(expFlag, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		return parts, nil
	}
	matches, err := filepath.Glob(filepath.Join(baseDir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	var names []string
	for _, m := range matches {
		base := filepath.Base(m)
		names = append(names, strings.TrimSuffix(strings.TrimPrefix(base, "BENCH_"), ".json"))
	}
	sort.Strings(names)
	return names, nil
}

func readReport(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// diffExperiment compares one experiment and returns (regressions,
// warnings) found. threshold gates deterministic counter columns,
// timeThr gates wall-clock-dependent ones.
func diffExperiment(w io.Writer, name string, base, cur *report, threshold, timeThr float64) (int, int) {
	fmt.Fprintf(w, "== %s (scale %s)\n", name, base.Scale)
	regressions, warnings := 0, 0

	// Wall clock of the whole experiment.
	if verdict := compare(base.ElapsedSec, cur.ElapsedSec, false, timeThr, minSeconds); verdict != "" {
		fmt.Fprintf(w, "  %-40s %10.3f -> %10.3f  %s\n", "elapsed_sec", base.ElapsedSec, cur.ElapsedSec, verdict)
		if verdict[0] == 'R' {
			regressions++
		}
	}

	if len(base.Tables) != len(cur.Tables) {
		fmt.Fprintf(w, "  WARNING: table count changed (%d -> %d); cell comparison skipped\n", len(base.Tables), len(cur.Tables))
		return regressions, warnings + 1
	}
	for ti, bt := range base.Tables {
		ct := cur.Tables[ti]
		if len(bt.Rows) != len(ct.Rows) || len(bt.Headers) != len(ct.Headers) {
			fmt.Fprintf(w, "  WARNING: table %q shape changed; skipped\n", bt.Title)
			warnings++
			continue
		}
		for ci, header := range bt.Headers {
			kind := columnKind(header)
			if !kind.tracked {
				continue
			}
			thr := threshold
			if kind.wallClock {
				thr = timeThr
			}
			for ri := range bt.Rows {
				if ci >= len(bt.Rows[ri]) || ci >= len(ct.Rows[ri]) {
					continue
				}
				bv, bok := cellValue(bt.Rows[ri][ci])
				cv, cok := cellValue(ct.Rows[ri][ci])
				if !bok || !cok {
					continue
				}
				if verdict := compare(bv, cv, kind.higherBetter, thr, kind.floor); verdict != "" {
					label := fmt.Sprintf("%s[%s]", header, rowKey(bt.Rows[ri], ci))
					fmt.Fprintf(w, "  %-40s %10.3f -> %10.3f  %s\n", label, bv, cv, verdict)
					if verdict[0] == 'R' {
						regressions++
					}
				}
			}
		}
	}
	return regressions, warnings
}

// Noise floors: values this small in the baseline are jitter, not signal.
const (
	minSeconds  = 0.005 // 5ms
	minCounter  = 10
	minRate     = 10  // qps-like
	minLatencyM = 0.5 // ms
)

// metricKind classifies a table column: direction, noise floor, whether
// it is a tracked metric at all (identity axes like "dataset" or "k" are
// not), and whether it depends on wall clock (machine-noisy, gated by the
// laxer -time-threshold) or is a deterministic work counter (gated by
// -threshold).
type metricKind struct {
	higherBetter bool
	floor        float64
	tracked      bool
	wallClock    bool
}

func columnKind(header string) metricKind {
	h := strings.ToLower(header)
	switch {
	case strings.Contains(h, "offered"):
		// Sweep axis, not an outcome (the load generator's arrival rate).
		return metricKind{}
	case strings.Contains(h, "qps"), strings.Contains(h, "speedup"), strings.Contains(h, "achieved"):
		return metricKind{higherBetter: true, floor: minRate, tracked: true, wallClock: true}
	case strings.Contains(h, "(ms)"):
		return metricKind{floor: minLatencyM, tracked: true, wallClock: true}
	case strings.Contains(h, "(s)"), strings.Contains(h, "time"):
		return metricKind{floor: minSeconds, tracked: true, wallClock: true}
	case strings.Contains(h, "refine"), strings.Contains(h, "settled"),
		strings.Contains(h, "pruned"), strings.Contains(h, "visited"):
		return metricKind{floor: minCounter, tracked: true}
	// Steady-state allocation cost per query (latency experiment): lower
	// is better. Near-deterministic — the arena and stamped-array reuse
	// pin the hot path, and the floors absorb the residual runtime noise
	// (background timer/GC bookkeeping caught by the ReadMemStats window).
	case strings.Contains(h, "allocs/"):
		return metricKind{floor: 2, tracked: true}
	case strings.Contains(h, "bytes/"):
		return metricKind{floor: 512, tracked: true}
	// Hub-label columns (hublabel experiment), deterministic for a fixed
	// seed: the labeling footprint regresses when it RISES, the count of
	// label-certified prunes when it FALLS (a weaker labeling pushes
	// candidates back onto Dijkstra refinements).
	case strings.Contains(h, "label bytes"):
		return metricKind{floor: 1024, tracked: true}
	case strings.Contains(h, "label prunes"):
		return metricKind{higherBetter: true, floor: minCounter, tracked: true}
	// Cluster scatter-gather counters (serving_cluster): deterministic
	// shard-work metrics. Entries moved and escalation rounds regress
	// when they RISE; shards short-circuited by their rank floor and the
	// transfer saving regress when they FALL.
	case strings.Contains(h, "entries"), strings.Contains(h, "escalation"):
		return metricKind{floor: minCounter, tracked: true}
	case strings.Contains(h, "short-circuit"):
		return metricKind{higherBetter: true, floor: minCounter, tracked: true}
	case strings.Contains(h, "saved"):
		return metricKind{higherBetter: true, floor: 1, tracked: true}
	// Cache + batch-scatter columns (serving_batch). Hit rate, coalesce
	// count, and RPCs-per-query are deterministic for a fixed seed
	// (sequential batches classify hits and flights in stream order);
	// goodput is wall clock.
	case strings.Contains(h, "hit rate"), strings.Contains(h, "coalesce"):
		return metricKind{higherBetter: true, floor: 1, tracked: true}
	case strings.Contains(h, "rpcs"):
		return metricKind{floor: 0.05, tracked: true}
	case strings.Contains(h, "goodput"), strings.Contains(h, "q/s"):
		return metricKind{higherBetter: true, floor: minRate, tracked: true, wallClock: true}
	}
	return metricKind{}
}

// cellValue parses a metric cell, tolerating the "%"/"x" suffixes the
// tables use for percentages and speedups.
func cellValue(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// compare returns a verdict line fragment: "REGRESSION ..." (counts
// against the build), "improved ..." (informational), or "" (within
// threshold or below the noise floor).
func compare(base, cur float64, higherBetter bool, threshold, floor float64) string {
	if base < floor && cur < floor {
		return ""
	}
	if base == 0 {
		return ""
	}
	rel := (cur - base) / base
	if higherBetter {
		rel = -rel
	}
	switch {
	case rel > threshold:
		return fmt.Sprintf("REGRESSION (%+.0f%%)", 100*(cur-base)/base)
	case rel < -threshold:
		return fmt.Sprintf("improved (%+.0f%%)", 100*(cur-base)/base)
	}
	return ""
}

// rowKey labels a finding with the row's identity cells (everything before
// the metric column that does not parse as a pure metric), so "p99
// (ms)[dblp 400]" reads immediately.
func rowKey(row []string, metricCol int) string {
	var parts []string
	for i, c := range row {
		if i >= metricCol || i >= 3 {
			break
		}
		parts = append(parts, strings.TrimSpace(c))
	}
	return strings.Join(parts, " ")
}
