package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, r report) {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_"+name+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func baseReport() report {
	return report{
		Experiment: "figure6",
		Scale:      "small",
		ElapsedSec: 10,
		Tables: []table{{
			Title:   "efficiency",
			Headers: []string{"dataset", "k", "dynamic time (s)", "rank refinements", "aggregate QPS"},
			Rows: [][]string{
				{"dblp", "10", "0.100", "1500", "800"},
				{"dblp", "20", "0.200", "3000", "400"},
			},
		}},
	}
}

func runDiff(t *testing.T, baseDir, curDir string, extra ...string) (int, string) {
	t.Helper()
	var sb strings.Builder
	args := append([]string{"-baseline", baseDir, "-current", curDir}, extra...)
	code, err := run(args, &sb)
	if err != nil {
		t.Fatalf("benchdiff error: %v", err)
	}
	return code, sb.String()
}

func TestNoRegression(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeReport(t, baseDir, "figure6", baseReport())
	cur := baseReport()
	cur.ElapsedSec = 11 // +10%, inside 25%
	cur.Tables[0].Rows[0][2] = "0.110"
	writeReport(t, curDir, "figure6", cur)
	code, out := runDiff(t, baseDir, curDir)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out)
	}
	if !strings.Contains(out, "0 regression(s)") {
		t.Errorf("output:\n%s", out)
	}
}

func TestTimeRegressionFails(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeReport(t, baseDir, "figure6", baseReport())
	cur := baseReport()
	cur.Tables[0].Rows[1][2] = "0.300" // +50% on a time column
	writeReport(t, curDir, "figure6", cur)
	code, out := runDiff(t, baseDir, curDir, "-time-threshold", "0.25")
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "dynamic time (s)") {
		t.Errorf("output:\n%s", out)
	}
}

func TestCounterRegressionFails(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeReport(t, baseDir, "figure6", baseReport())
	cur := baseReport()
	cur.Tables[0].Rows[0][3] = "2500" // +67% refinements: algorithmic regression
	writeReport(t, curDir, "figure6", cur)
	code, out := runDiff(t, baseDir, curDir)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "rank refinements") {
		t.Errorf("output:\n%s", out)
	}
}

func TestThroughputDropFails(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeReport(t, baseDir, "figure6", baseReport())
	cur := baseReport()
	cur.Tables[0].Rows[0][4] = "400" // QPS halved: higher-is-better direction
	writeReport(t, curDir, "figure6", cur)
	code, out := runDiff(t, baseDir, curDir, "-time-threshold", "0.25")
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "aggregate QPS") {
		t.Errorf("output:\n%s", out)
	}
}

func TestThroughputGainPasses(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeReport(t, baseDir, "figure6", baseReport())
	cur := baseReport()
	cur.Tables[0].Rows[0][4] = "1600" // QPS doubled: improvement, not regression
	cur.Tables[0].Rows[0][2] = "0.050"
	writeReport(t, curDir, "figure6", cur)
	code, out := runDiff(t, baseDir, curDir, "-time-threshold", "0.25")
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out)
	}
	if !strings.Contains(out, "improved") {
		t.Errorf("improvements should be reported:\n%s", out)
	}
}

// TestWallClockLaxByDefault: a +50% wall-clock swing passes under the
// default time-threshold (machine noise), while the same swing on a
// counter column would fail — the two-gate design.
func TestWallClockLaxByDefault(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeReport(t, baseDir, "figure6", baseReport())
	cur := baseReport()
	cur.Tables[0].Rows[1][2] = "0.300" // +50% time: within the 100% default
	writeReport(t, curDir, "figure6", cur)
	code, out := runDiff(t, baseDir, curDir)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out)
	}
}

func TestNoiseFloor(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	base := baseReport()
	base.Tables[0].Rows[0][2] = "0.0001" // sub-floor timing
	writeReport(t, baseDir, "figure6", base)
	cur := baseReport()
	cur.Tables[0].Rows[0][2] = "0.0009" // 9x, but both under 5ms
	writeReport(t, curDir, "figure6", cur)
	code, out := runDiff(t, baseDir, curDir)
	if code != 0 {
		t.Fatalf("noise-floor jitter failed the diff:\n%s", out)
	}
}

func TestShapeChangeWarns(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeReport(t, baseDir, "figure6", baseReport())
	cur := baseReport()
	cur.Tables[0].Rows = cur.Tables[0].Rows[:1]
	writeReport(t, curDir, "figure6", cur)
	code, out := runDiff(t, baseDir, curDir)
	if code != 0 || !strings.Contains(out, "WARNING") {
		t.Fatalf("exit %d, output:\n%s", code, out)
	}
}

func TestMissingCurrentArtifactErrors(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeReport(t, baseDir, "figure6", baseReport())
	var sb strings.Builder
	if _, err := run([]string{"-baseline", baseDir, "-current", curDir}, &sb); err == nil {
		t.Fatal("missing current artifact accepted")
	}
}

func TestExperimentsFlagSelects(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeReport(t, baseDir, "figure6", baseReport())
	other := baseReport()
	other.Experiment = "latency"
	writeReport(t, baseDir, "latency", other)
	writeReport(t, curDir, "figure6", baseReport())
	// latency missing from current — but only figure6 is selected.
	code, out := runDiff(t, baseDir, curDir, "-experiments", "figure6")
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out)
	}
	if strings.Contains(out, "latency") {
		t.Errorf("unselected experiment compared:\n%s", out)
	}
}

func clusterReport() report {
	return report{
		Experiment: "serving_cluster",
		Scale:      "small",
		ElapsedSec: 2,
		Tables: []table{{
			Title: "cluster",
			Headers: []string{"dataset", "partitioner", "shards", "mean (ms)",
				"transferred (entries)", "naive gather (entries)", "saved (%)",
				"short-circuited", "escalations", "refinements"},
			Rows: [][]string{
				{"dblp", "degree", "4", "1.500", "800", "2000", "60%", "30", "12", "5000"},
			},
		}},
	}
}

// TestClusterCounterDirections pins the direction-aware gating of the
// serving_cluster columns: transfer growth and short-circuit loss are
// regressions; a transfer DROP is an improvement, not a failure.
func TestClusterCounterDirections(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeReport(t, baseDir, "serving_cluster", clusterReport())

	// Transferred entries ballooning (pruning broke) must fail.
	cur := clusterReport()
	cur.Tables[0].Rows[0][4] = "1900" // +137%
	writeReport(t, curDir, "serving_cluster", cur)
	code, out := runDiff(t, baseDir, curDir, "-experiments", "serving_cluster")
	if code != 1 || !strings.Contains(out, "transferred") {
		t.Fatalf("transfer regression not caught (exit %d):\n%s", code, out)
	}

	// Short-circuited shards collapsing must fail (higher is better).
	cur = clusterReport()
	cur.Tables[0].Rows[0][7] = "11" // -63%
	writeReport(t, curDir, "serving_cluster", cur)
	code, out = runDiff(t, baseDir, curDir, "-experiments", "serving_cluster")
	if code != 1 || !strings.Contains(out, "short-circuited") {
		t.Fatalf("short-circuit regression not caught (exit %d):\n%s", code, out)
	}

	// Saved% collapsing must fail (higher is better).
	cur = clusterReport()
	cur.Tables[0].Rows[0][6] = "20%"
	writeReport(t, curDir, "serving_cluster", cur)
	code, out = runDiff(t, baseDir, curDir, "-experiments", "serving_cluster")
	if code != 1 || !strings.Contains(out, "saved") {
		t.Fatalf("saved%% regression not caught (exit %d):\n%s", code, out)
	}

	// Transfer dropping further is an improvement, and latency noise is
	// gated by the lax wall-clock threshold: both pass.
	cur = clusterReport()
	cur.Tables[0].Rows[0][4] = "500"
	cur.Tables[0].Rows[0][3] = "2.200" // +47% wall clock, inside 100%
	writeReport(t, curDir, "serving_cluster", cur)
	code, out = runDiff(t, baseDir, curDir, "-experiments", "serving_cluster")
	if code != 0 {
		t.Fatalf("improvement flagged as regression:\n%s", out)
	}
	if !strings.Contains(out, "improved") {
		t.Errorf("transfer improvement not reported:\n%s", out)
	}
}

func batchReport() report {
	return report{
		Experiment: "serving_batch",
		Scale:      "small",
		ElapsedSec: 2,
		Tables: []table{{
			Title: "batch",
			Headers: []string{"dataset", "batch", "dup (%)", "goodput (q/s)", "baseline (q/s)",
				"speedup", "p99 (ms)", "hit rate (%)", "coalesced", "rpcs/query"},
			Rows: [][]string{
				{"dblp", "8", "50", "500", "250", "2.00x", "30.00", "43%", "7", "0.58"},
			},
		}},
	}
}

// TestServingBatchColumnDirections pins the direction-aware gating of
// the serving_batch columns: hit-rate and coalesce collapse are
// regressions (higher is better), RPCs-per-query growth is a regression
// (lower is better), and the wall-clock goodput/p99 columns stay on the
// lax gate.
func TestServingBatchColumnDirections(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeReport(t, baseDir, "serving_batch", batchReport())

	// Hit rate collapsing must fail (higher is better).
	cur := batchReport()
	cur.Tables[0].Rows[0][7] = "10%"
	writeReport(t, curDir, "serving_batch", cur)
	code, out := runDiff(t, baseDir, curDir, "-experiments", "serving_batch")
	if code != 1 || !strings.Contains(out, "hit rate") {
		t.Fatalf("hit-rate regression not caught (exit %d):\n%s", code, out)
	}

	// Coalesced collapsing must fail (higher is better).
	cur = batchReport()
	cur.Tables[0].Rows[0][8] = "1"
	writeReport(t, curDir, "serving_batch", cur)
	code, out = runDiff(t, baseDir, curDir, "-experiments", "serving_batch")
	if code != 1 || !strings.Contains(out, "coalesced") {
		t.Fatalf("coalesce regression not caught (exit %d):\n%s", code, out)
	}

	// RPCs per query ballooning must fail (lower is better: batch
	// scatter degraded back toward per-query fan-out).
	cur = batchReport()
	cur.Tables[0].Rows[0][9] = "2.00"
	writeReport(t, curDir, "serving_batch", cur)
	code, out = runDiff(t, baseDir, curDir, "-experiments", "serving_batch")
	if code != 1 || !strings.Contains(out, "rpcs/query") {
		t.Fatalf("rpcs-per-query regression not caught (exit %d):\n%s", code, out)
	}

	// RPCs per query dropping is an improvement; goodput wobble and p99
	// noise stay inside the lax wall-clock gate.
	cur = batchReport()
	cur.Tables[0].Rows[0][9] = "0.30"
	cur.Tables[0].Rows[0][3] = "300" // -40% goodput: inside the 100% gate
	cur.Tables[0].Rows[0][6] = "55.00"
	writeReport(t, curDir, "serving_batch", cur)
	code, out = runDiff(t, baseDir, curDir, "-experiments", "serving_batch")
	if code != 0 {
		t.Fatalf("lax columns failed the build:\n%s", out)
	}
	if !strings.Contains(out, "improved") {
		t.Errorf("rpcs improvement not reported:\n%s", out)
	}

	// Under a tightened wall-clock gate, a goodput collapse fails in the
	// higher-is-better direction.
	cur = batchReport()
	cur.Tables[0].Rows[0][3] = "100" // -80%
	writeReport(t, curDir, "serving_batch", cur)
	code, out = runDiff(t, baseDir, curDir, "-experiments", "serving_batch", "-time-threshold", "0.5")
	if code != 1 || !strings.Contains(out, "goodput") {
		t.Fatalf("goodput collapse not caught (exit %d):\n%s", code, out)
	}
}
