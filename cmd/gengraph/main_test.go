package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rkranks/internal/graph"
)

func TestRunDBLP(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g.rkg")
	var sb strings.Builder
	if err := run([]string{"-type", "dblp", "-nodes", "300", "-out", out}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "300 nodes") {
		t.Errorf("output: %q", sb.String())
	}
	g, err := graph.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 300 || g.Directed() {
		t.Errorf("graph: n=%d directed=%v", g.N(), g.Directed())
	}
}

func TestRunRoadWithStores(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g.txt")
	storesOut := filepath.Join(dir, "stores.txt")
	var sb strings.Builder
	err := run([]string{"-type", "road", "-rows", "10", "-cols", "10",
		"-stores", "7", "-out", out, "-storesout", storesOut}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 {
		t.Errorf("road nodes = %d", g.N())
	}
	f, err := os.Open(storesOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines++
	}
	if lines != 7 {
		t.Errorf("stores file has %d lines", lines)
	}
}

func TestRunGNMAndEpinions(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	gnm := filepath.Join(dir, "gnm.rkg")
	if err := run([]string{"-type", "gnm", "-nodes", "50", "-out", gnm}, &sb); err != nil {
		t.Fatal(err)
	}
	epi := filepath.Join(dir, "epi.rkg")
	if err := run([]string{"-type", "epinions", "-nodes", "80", "-out", epi}, &sb); err != nil {
		t.Fatal(err)
	}
	g, err := graph.ReadFile(epi)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed() {
		t.Error("epinions not directed")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-type", "dblp"}, &sb); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run([]string{"-type", "wat", "-out", filepath.Join(t.TempDir(), "x")}, &sb); err == nil {
		t.Error("unknown type accepted")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
}
