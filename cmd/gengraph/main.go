// Command gengraph generates the synthetic datasets used throughout this
// repository (DBLP-like collaboration graph, Epinions-like trust graph,
// SF-like road network, uniform G(n,m)) and writes them in the graph text
// or binary format.
//
// Usage:
//
//	gengraph -type dblp -nodes 20000 -out dblp.rkg
//	gengraph -type road -rows 200 -cols 200 -stores 408 -out sf.rkg -storesout sf.stores
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"rkranks/internal/gen"
	"rkranks/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gengraph: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gengraph", flag.ContinueOnError)
	var (
		typ       = fs.String("type", "dblp", "dataset type: dblp|epinions|road|gnm")
		nodes     = fs.Int("nodes", 10000, "node count (dblp, epinions, gnm)")
		edges     = fs.Int("edges", 0, "edge count (gnm; default 3x nodes)")
		attach    = fs.Int("attach", 7, "collaborations per arriving author (dblp)")
		outdeg    = fs.Int("outdeg", 3, "trust statements per arriving user (epinions)")
		directed  = fs.Bool("directed", true, "directed edges (epinions, gnm)")
		rows      = fs.Int("rows", 100, "grid rows (road)")
		cols      = fs.Int("cols", 100, "grid cols (road)")
		stores    = fs.Int("stores", 408, "store count (road)")
		seed      = fs.Int64("seed", 1, "random seed")
		out       = fs.String("out", "", "output graph path (.rkg = binary, else text)")
		storesOut = fs.String("storesout", "", "output path for store node ids (road)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	var g *graph.Graph
	var storeIDs []int32
	switch *typ {
	case "dblp":
		g = gen.DBLPLike(gen.DBLPLikeParams{
			Nodes: *nodes, AttachPerNode: *attach, ExtraCollabFactor: 0.5, Seed: *seed,
		})
	case "epinions":
		g = gen.EpinionsLike(gen.EpinionsLikeParams{
			Nodes: *nodes, OutPerNode: *outdeg, BackEdgeProb: 0.3,
			Undirected: !*directed, Seed: *seed,
		})
	case "road":
		g, storeIDs = gen.RoadNetwork(gen.RoadNetworkParams{
			Rows: *rows, Cols: *cols, KeepProb: 0.25, Stores: *stores, Seed: *seed,
		})
	case "gnm":
		m := *edges
		if m == 0 {
			m = 3 * *nodes
		}
		g = gen.GNM(*nodes, m, *directed, *seed)
	default:
		return fmt.Errorf("unknown -type %q (want dblp|epinions|road|gnm)", *typ)
	}

	if err := graph.WriteFile(*out, g); err != nil {
		return fmt.Errorf("writing %s: %w", *out, err)
	}
	fmt.Fprintf(stdout, "wrote %s: %d nodes, %d edges, directed=%v\n", *out, g.N(), g.M(), g.Directed())

	if *typ == "road" && *storesOut != "" {
		f, err := os.Create(*storesOut)
		if err != nil {
			return err
		}
		for _, s := range storeIDs {
			fmt.Fprintln(f, s)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s: %d store ids\n", *storesOut, len(storeIDs))
	}
	return nil
}
